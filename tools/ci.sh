#!/usr/bin/env bash
# CI driver: builds the optimised, sanitizer and arena-fallback
# configurations and runs the full test suite under each. The coroutine
# scheduler (src/mcb/scheduler.*, Network::run_event_loop) and the frame
# arena (src/util/arena.*) are pointer-heavy and lifetime-sensitive, so
# every change is exercised under ASan+UBSan — with the arena ON, its
# default — not just the optimised build; the MCB_FRAME_ARENA=OFF preset
# proves the global-new fallback builds and passes the same suite.
#
# Static analysis rides along in three places: tools/lint.sh (mcblint, the
# repo-aware analyzer with rules MCB-L1..L6, plus the clang-tidy profile)
# runs against the release tree's compile_commands.json with the same 0/1/3
# exit discipline as `mcbsim gates` (3 = a tool could not run here — loud
# warning, not silent pass); every preset leg re-runs that preset's own
# mcblint binary and cmp's two --json runs (the linter is held to the same
# byte-determinism contract as the engines it audits); and a
# ThreadSanitizer build runs the harness / thread-pool suite — the one
# genuinely multi-threaded subsystem — plus a checked sweep smoke.
#
# Each suite leg also smokes the telemetry layer end-to-end: --obs runs
# (span reconciliation is a hard failure), a --trace-out export, and the
# `mcbsim report` determinism contract (byte-identical output across
# independent invocations and sweep thread counts, enforced with cmp).
#
# After the suites, the bench gates run on the release build. Every
# BENCH_*.json records its gates with an "enforced" flag (a gate is
# unenforced when the machine cannot express it, e.g. the parallel-sweep
# speedup on < 4 hardware threads, or the arena gate in an arena-off
# build). Gate checking is the `mcbsim gates` subcommand (a strict JSON
# walk, not a grep): enforced-gate failures fail this script; unenforced
# gates fail it too on machines with >= 4 hardware threads (where every
# gate is expressible) and are surfaced as a visible WARNING on narrower
# ones instead of silently recording "enforced": false.
#
# Usage: tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
WARNINGS=0

# Host-capability banner: the thread-scaling bench gates arm only on >= 4
# hardware threads, and the p=2^20 big row only inside its wall-clock
# budget — say up front which discipline this machine is held to, so a log
# reader can interpret UNENFORCED rows without guessing at the hardware.
HW_THREADS="$(nproc)"
echo "=== host capability ==="
echo "hardware threads: $HW_THREADS"
if [ "$HW_THREADS" -ge 4 ]; then
  echo "bench gate policy: thread-scaling gates ENFORCED; an unenforced" \
       "gate fails CI unless it is the budget-gated big_row_p2_20 coverage" \
       "stub (which warns)"
else
  echo "bench gate policy: thread-scaling gates NOT enforceable here" \
       "(< 4 hardware threads); unenforced gates surface as WARNINGs"
fi

run_preset() {
  local preset="$1"
  local builddir="$2"
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] test ==="
  ctest --preset "$preset"
  # Smoke the parallel sweep harness end-to-end through the CLI: a small
  # grid on several workers with the conformance checker attached, plus the
  # determinism contract (the JSON output must not depend on the thread
  # count). Data races in the pool itself are the dedicated TSan leg's job
  # (below); this pass covers lifetime handling under ASan+UBSan and, with
  # the frame arena on, the per-trial thread_local arena install.
  echo "=== [$preset] sweep smoke ==="
  "$builddir/tools/mcbsim" sweep --p 4,8 --k 2 --n 64,128 \
    --shapes even,random --algorithms auto,select --seeds 2 --threads 4 \
    --check
  "$builddir/tools/mcbsim" sweep --p 8 --k 2 --n 256 --algorithms select \
    --seeds 3 --threads 1 --json > "$builddir/sweep_t1.json"
  "$builddir/tools/mcbsim" sweep --p 8 --k 2 --n 256 --algorithms select \
    --seeds 3 --threads 4 --json > "$builddir/sweep_t4.json"
  cmp "$builddir/sweep_t1.json" "$builddir/sweep_t4.json"
  # Telemetry smoke: --obs runs reconcile spans against PhaseStats (non-zero
  # exit on disagreement), --trace-out must produce a file, and the Markdown
  # report of a logical run must be byte-identical across independent
  # process invocations — the report reads no host-side timing, and cmp
  # holds it to that.
  echo "=== [$preset] telemetry smoke ==="
  "$builddir/tools/mcbsim" sort --p 16 --k 4 --n 1024 --obs \
    --trace-out "$builddir/obs_trace.json" > /dev/null
  test -s "$builddir/obs_trace.json"
  "$builddir/tools/mcbsim" select --p 16 --k 4 --n 1024 --obs --json \
    > "$builddir/obs_run_a.json"
  "$builddir/tools/mcbsim" select --p 16 --k 4 --n 1024 --obs --json \
    > "$builddir/obs_run_b.json"
  "$builddir/tools/mcbsim" report "$builddir/obs_run_a.json" \
    > "$builddir/obs_report_a.md"
  "$builddir/tools/mcbsim" report "$builddir/obs_run_b.json" \
    > "$builddir/obs_report_b.md"
  cmp "$builddir/obs_report_a.md" "$builddir/obs_report_b.md"
  # Sweep telemetry keeps the thread-count determinism contract.
  "$builddir/tools/mcbsim" sweep --p 8 --k 2 --n 128 \
    --algorithms auto,select --seeds 2 --obs --threads 1 --json \
    > "$builddir/obs_sweep_t1.json"
  "$builddir/tools/mcbsim" sweep --p 8 --k 2 --n 128 \
    --algorithms auto,select --seeds 2 --obs --threads 4 --json \
    > "$builddir/obs_sweep_t4.json"
  cmp "$builddir/obs_sweep_t1.json" "$builddir/obs_sweep_t4.json"
  "$builddir/tools/mcbsim" report "$builddir/obs_sweep_t1.json" > /dev/null
  # Serving smoke: a persistent network answers a mixed query stream with
  # every answer cross-checked against host-side ground truth (--verify),
  # then the report determinism contract — the serve JSON carries only
  # model-level fields, so one seed must produce byte-identical documents
  # whichever engine answers it and however many worker threads the
  # parallel engine uses.
  echo "=== [$preset] serve smoke ==="
  "$builddir/tools/mcbsim" serve --p 16 --k 4 --n 1024 --queries 48 \
    --batch 8 --seed 7 --verify > /dev/null
  "$builddir/tools/mcbsim" serve --p 16 --k 4 --n 1024 --queries 48 \
    --batch 8 --seed 7 --json > "$builddir/serve_event.json"
  "$builddir/tools/mcbsim" serve --p 16 --k 4 --n 1024 --queries 48 \
    --batch 8 --seed 7 --engine reference --json \
    > "$builddir/serve_reference.json"
  "$builddir/tools/mcbsim" serve --p 16 --k 4 --n 1024 --queries 48 \
    --batch 8 --seed 7 --engine parallel --threads 1 --json \
    > "$builddir/serve_par_t1.json"
  "$builddir/tools/mcbsim" serve --p 16 --k 4 --n 1024 --queries 48 \
    --batch 8 --seed 7 --engine parallel --threads 4 --json \
    > "$builddir/serve_par_t4.json"
  cmp "$builddir/serve_event.json" "$builddir/serve_reference.json"
  cmp "$builddir/serve_event.json" "$builddir/serve_par_t1.json"
  cmp "$builddir/serve_event.json" "$builddir/serve_par_t4.json"
  # Profiler quarantine contract, made executable: a --profile run may add
  # host-time telemetry but must not perturb one model-level byte. strip-host
  # strict-parses each document (malformed profiler JSON fails here) and
  # re-serializes it without the quarantined host fields; profiled and
  # unprofiled runs must then cmp equal. The report renderer must also
  # accept a profiled document (it renders the Host profile section).
  echo "=== [$preset] profiled smoke (host_profile quarantine) ==="
  "$builddir/tools/mcbsim" sort --p 16 --k 4 --n 1024 --engine parallel \
    --threads 4 --profile --json > "$builddir/prof_sort.json"
  "$builddir/tools/mcbsim" sort --p 16 --k 4 --n 1024 --engine parallel \
    --threads 4 --json > "$builddir/plain_sort.json"
  "$builddir/tools/mcbsim" strip-host "$builddir/prof_sort.json" \
    > "$builddir/prof_sort.stripped.json"
  "$builddir/tools/mcbsim" strip-host "$builddir/plain_sort.json" \
    > "$builddir/plain_sort.stripped.json"
  cmp "$builddir/prof_sort.stripped.json" "$builddir/plain_sort.stripped.json"
  "$builddir/tools/mcbsim" serve --p 16 --k 4 --n 1024 --queries 48 \
    --batch 8 --seed 7 --engine parallel --threads 4 --profile --json \
    > "$builddir/prof_serve.json"
  "$builddir/tools/mcbsim" strip-host "$builddir/prof_serve.json" \
    > "$builddir/prof_serve.stripped.json"
  "$builddir/tools/mcbsim" strip-host "$builddir/serve_par_t4.json" \
    > "$builddir/plain_serve.stripped.json"
  cmp "$builddir/prof_serve.stripped.json" "$builddir/plain_serve.stripped.json"
  "$builddir/tools/mcbsim" report "$builddir/prof_serve.json" > /dev/null
  run_mcblint_leg "$preset" "$builddir"
}

# Runs this build tree's own mcblint binary over the lint wall's scan set
# (exit 1 on findings aborts CI via set -e), then holds the linter to the
# repo's determinism contract: two --json runs must be byte-identical.
run_mcblint_leg() {
  local preset="$1"
  local builddir="$2"
  echo "=== [$preset] mcblint (repo rules + two-run JSON determinism) ==="
  "$builddir/tools/mcblint/mcblint" --root . \
    --baseline tools/mcblint/baseline.txt --json \
    src bench tools/mcbsim.cpp tools/mcblint > "$builddir/mcblint_a.json"
  "$builddir/tools/mcblint/mcblint" --root . \
    --baseline tools/mcblint/baseline.txt --json \
    src bench tools/mcbsim.cpp tools/mcblint > "$builddir/mcblint_b.json"
  cmp "$builddir/mcblint_a.json" "$builddir/mcblint_b.json"
}

# Validates a bench artifact's gates with `mcbsim gates`: a strict JSON
# parse of every gate object (any object carrying an "enforced" bool), not
# a text grep that a formatting change could silently blind. Exit 1 =
# enforced gate failed (or no gates found / unreadable artifact) — fails
# CI; exit 3 = all enforced gates passed but unenforced ones exist. On a
# machine with >= 4 hardware threads every gate in the release artifacts is
# expressible (the arena is on, and the two thread-scaling gates only need
# 4 lanes), so exit 3 there means a gate that should have been armed was
# not — a regression in the bench, not a machine limitation — and fails CI.
# Narrower machines keep the loud WARNING. Sole exception: the
# big_row_p2_20 coverage stub is budget-gated by wall clock, not thread
# count, so a skip stays a WARNING on any machine.
check_gates() {
  local json="$1"
  if [ ! -f "$json" ]; then
    echo "WARNING: bench artifact $json missing" >&2
    WARNINGS=$((WARNINGS + 1))
    return 0
  fi
  local rc=0
  ./build-release/tools/mcbsim gates "$json" | tee "$json.gates.txt" || rc=$?
  case "$rc" in
    0) ;;
    3)
      if [ "$(nproc)" -ge 4 ]; then
        # One unenforced row is legitimate even on a wide machine: the
        # budget-gated p=2^20 coverage stub (a slow box skips the big row
        # however many threads it has). Anything else unenforced here is a
        # bench regression.
        if grep '^UNENFORCED' "$json.gates.txt" \
            | grep -qv 'big_row_p2_20'; then
          echo "FAIL: $json contains UNENFORCED bench gate(s) on a" \
               ">= 4-thread machine — every gate is expressible here, so an" \
               "unenforced gate is a bench regression (see the rows above)" >&2
          exit 1
        fi
        echo "WARNING: $json skipped the budget-gated p=2^20 big row on" \
             "this machine (set MCB_SIMSPEED_FORCE_BIG=1 to run it)" >&2
        WARNINGS=$((WARNINGS + 1))
        return 0
      fi
      echo "WARNING: $json contains UNENFORCED bench gate(s) — this machine" \
           "did not validate them (see the gate rows above)" >&2
      WARNINGS=$((WARNINGS + 1))
      ;;
    *)
      echo "FAIL: bench gate check failed for $json (exit $rc)" >&2
      exit 1
      ;;
  esac
}

run_preset release build-release

# Static-analysis wall, as soon as a build tree exists. lint.sh exits 0
# clean / 1 findings / 3 tool-missing-warn: findings fail CI, 3 means every
# check that ran is clean but a tool was unavailable here — the same
# loud-warning policy as unenforceable bench gates.
echo "=== lint (mcblint + clang-tidy profile) ==="
lint_rc=0
./tools/lint.sh build-release || lint_rc=$?
case "$lint_rc" in
  0) ;;
  3)
    echo "WARNING: lint wall incomplete on this machine — some tools" \
         "could not run (see lint output above)" >&2
    WARNINGS=$((WARNINGS + 1))
    ;;
  *)
    echo "FAIL: lint reported findings (exit $lint_rc)" >&2
    exit 1
    ;;
esac

run_preset asan-ubsan build-asan
run_preset noarena build-noarena

# ThreadSanitizer leg: the worker pool in src/harness and the parallel
# engine's striped cycle passes are the places real threads share state, so
# the harness suite, the full three-engine equivalence grid (which drives
# Engine::kParallel at 1/2/4/8 workers) and a checked parallel sweep through
# the CLI all run under TSan. Building the whole matrix under TSan would
# double CI time for code TSan cannot exercise.
echo "=== [tsan] configure ==="
cmake --preset tsan
echo "=== [tsan] build (harness + equivalence suites + CLI) ==="
cmake --build --preset tsan -j "$JOBS" \
  --target harness_test scheduler_equivalence_test mcbsim mcblint
echo "=== [tsan] harness / thread-pool / engine-equivalence suites ==="
ctest --preset tsan
echo "=== [tsan] checked parallel sweep smoke ==="
./build-tsan/tools/mcbsim sweep --p 4,8 --k 2 --n 64 \
  --algorithms auto,select --seeds 2 --threads 4 --check
echo "=== [tsan] checked parallel-engine run smoke ==="
./build-tsan/tools/mcbsim select --p 64 --k 4 --n 256 \
  --engine parallel --threads 4 --check > /dev/null
# The serving loop reset()s and re-runs one network across batches; under
# the parallel engine that re-crosses every stripe handoff, so it runs
# under TSan too — with the thread-count determinism contract on top.
echo "=== [tsan] serve smoke (parallel engine, reset-reuse path) ==="
./build-tsan/tools/mcbsim serve --p 16 --k 4 --n 1024 --queries 32 \
  --batch 8 --seed 7 --verify --engine parallel --threads 4 --json \
  > build-tsan/serve_par_t4.json
./build-tsan/tools/mcbsim serve --p 16 --k 4 --n 1024 --queries 32 \
  --batch 8 --seed 7 --verify --engine parallel --threads 2 --json \
  > build-tsan/serve_par_t2.json
cmp build-tsan/serve_par_t4.json build-tsan/serve_par_t2.json
run_mcblint_leg tsan build-tsan

# Profiling entry point: on hosts with perf the full record/report path is
# a developer tool, not a CI stage (its numbers are machine-local), but the
# script itself must not bitrot — listing mode exercises its argument
# handling and the preset names it would build with, no perf needed.
echo "=== profile.sh smoke (listing mode) ==="
./tools/profile.sh --list

# Bench gates on the optimised build. The binaries exit non-zero when an
# enforced gate fails, which aborts CI via set -e; unenforced gates only
# warn (check_gates below).
echo "=== bench gates (release) ==="
./build-release/bench/bench_simspeed build-release/BENCH_simspeed.json
./build-release/bench/bench_sweep build-release/BENCH_sweep.json
./build-release/bench/bench_serve build-release/BENCH_serve.json
check_gates build-release/BENCH_simspeed.json
check_gates build-release/BENCH_sweep.json
check_gates build-release/BENCH_serve.json

if [ "$WARNINGS" -gt 0 ]; then
  echo "CI OK with $WARNINGS WARNING(s): release + asan-ubsan + noarena" \
       "suites, lint, tsan leg and sweep smokes passed; some checks were" \
       "not enforceable on this machine (see warnings above)"
else
  echo "CI OK: release + asan-ubsan + noarena suites, lint, tsan leg," \
       "sweep smokes and all bench gates passed"
fi
