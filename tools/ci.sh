#!/usr/bin/env bash
# CI driver: builds the optimised and sanitizer configurations and runs the
# full test suite under both. The coroutine scheduler (src/mcb/scheduler.*,
# Network::run_event_loop) is pointer-heavy and lifetime-sensitive, so every
# change is exercised under ASan+UBSan, not just the optimised build.
#
# Usage: tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_preset() {
  local preset="$1"
  local builddir="$2"
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] test ==="
  ctest --preset "$preset"
  # Smoke the parallel sweep harness end-to-end through the CLI: a small
  # grid on several workers, plus the determinism contract (the JSON output
  # must not depend on the thread count). The harness itself needs no TSan
  # run — trials share nothing (see src/harness/thread_pool.hpp) — but the
  # ASan+UBSan pass covers the pool's lifetime handling.
  echo "=== [$preset] sweep smoke ==="
  "$builddir/tools/mcbsim" sweep --p 4,8 --k 2 --n 64,128 \
    --shapes even,random --algorithms auto,select --seeds 2 --threads 4
  "$builddir/tools/mcbsim" sweep --p 8 --k 2 --n 256 --algorithms select \
    --seeds 3 --threads 1 --json > "$builddir/sweep_t1.json"
  "$builddir/tools/mcbsim" sweep --p 8 --k 2 --n 256 --algorithms select \
    --seeds 3 --threads 4 --json > "$builddir/sweep_t4.json"
  cmp "$builddir/sweep_t1.json" "$builddir/sweep_t4.json"
}

run_preset release build-release
run_preset asan-ubsan build-asan

echo "CI OK: release + asan-ubsan suites and sweep smoke passed"
