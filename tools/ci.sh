#!/usr/bin/env bash
# CI driver: builds the optimised and sanitizer configurations and runs the
# full test suite under both. The coroutine scheduler (src/mcb/scheduler.*,
# Network::run_event_loop) is pointer-heavy and lifetime-sensitive, so every
# change is exercised under ASan+UBSan, not just the optimised build.
#
# Usage: tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_preset() {
  local preset="$1"
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] test ==="
  ctest --preset "$preset"
}

run_preset release
run_preset asan-ubsan

echo "CI OK: release + asan-ubsan suites passed"
