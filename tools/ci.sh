#!/usr/bin/env bash
# CI driver: builds the optimised, sanitizer and arena-fallback
# configurations and runs the full test suite under each. The coroutine
# scheduler (src/mcb/scheduler.*, Network::run_event_loop) and the frame
# arena (src/util/arena.*) are pointer-heavy and lifetime-sensitive, so
# every change is exercised under ASan+UBSan — with the arena ON, its
# default — not just the optimised build; the MCB_FRAME_ARENA=OFF preset
# proves the global-new fallback builds and passes the same suite.
#
# After the suites, the bench gates run on the release build. Every
# BENCH_*.json records its gates with an "enforced" flag (a gate is
# unenforced when the machine cannot express it, e.g. the parallel-sweep
# speedup on < 4 hardware threads, or the arena gate in an arena-off
# build); enforced gates fail the bench binary — and this script — while
# unenforced ones are surfaced as a visible WARNING instead of silently
# recording "enforced": false.
#
# Usage: tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
WARNINGS=0

run_preset() {
  local preset="$1"
  local builddir="$2"
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] test ==="
  ctest --preset "$preset"
  # Smoke the parallel sweep harness end-to-end through the CLI: a small
  # grid on several workers, plus the determinism contract (the JSON output
  # must not depend on the thread count). The harness itself needs no TSan
  # run — trials share nothing (see src/harness/thread_pool.hpp) — but the
  # ASan+UBSan pass covers the pool's lifetime handling, and with the frame
  # arena on it also covers the per-trial thread_local arena install.
  echo "=== [$preset] sweep smoke ==="
  "$builddir/tools/mcbsim" sweep --p 4,8 --k 2 --n 64,128 \
    --shapes even,random --algorithms auto,select --seeds 2 --threads 4
  "$builddir/tools/mcbsim" sweep --p 8 --k 2 --n 256 --algorithms select \
    --seeds 3 --threads 1 --json > "$builddir/sweep_t1.json"
  "$builddir/tools/mcbsim" sweep --p 8 --k 2 --n 256 --algorithms select \
    --seeds 3 --threads 4 --json > "$builddir/sweep_t4.json"
  cmp "$builddir/sweep_t1.json" "$builddir/sweep_t4.json"
}

# Scans a bench JSON for gates recorded as unenforced and shouts about them:
# an unenforced gate means this machine validated nothing, which must be
# visible in the log, not buried in the artifact.
check_gates() {
  local json="$1"
  [ -f "$json" ] || { echo "WARNING: bench artifact $json missing" >&2;
                      WARNINGS=$((WARNINGS + 1)); return 0; }
  if grep -q '"enforced": false' "$json"; then
    echo "WARNING: $json contains UNENFORCED bench gate(s) — this machine" \
         "did not validate them (see the gate entries below)" >&2
    grep -o '{[^{}]*"enforced": false[^{}]*}' "$json" >&2 || true
    WARNINGS=$((WARNINGS + 1))
  fi
}

run_preset release build-release
run_preset asan-ubsan build-asan
run_preset noarena build-noarena

# Bench gates on the optimised build. The binaries exit non-zero when an
# enforced gate fails, which aborts CI via set -e; unenforced gates only
# warn (check_gates below).
echo "=== bench gates (release) ==="
./build-release/bench/bench_simspeed build-release/BENCH_simspeed.json
./build-release/bench/bench_sweep build-release/BENCH_sweep.json
check_gates build-release/BENCH_simspeed.json
check_gates build-release/BENCH_sweep.json

if [ "$WARNINGS" -gt 0 ]; then
  echo "CI OK with $WARNINGS WARNING(s): release + asan-ubsan + noarena" \
       "suites and sweep smoke passed; some bench gates were not enforced"
else
  echo "CI OK: release + asan-ubsan + noarena suites, sweep smoke and all" \
       "bench gates passed"
fi
