#!/usr/bin/env bash
# Profiles the parallel engine's hot path with Linux perf.
#
# Builds the `perf` CMake preset (RelWithDebInfo, -O3 -march=native, LTO
# when the toolchain supports it — frame pointers kept so perf's call
# graphs resolve without DWARF unwinding every sample), perf-records one
# simspeed selection row through mcbsim, and prints the top hot symbols.
# The default row is the parallel-gate workload (selection p=65536 k=4
# n=262144, the point the bench gates measure), so a profile and the gate
# numbers describe the same run.
#
# The recorded run also carries the in-process flight recorder (mcbsim
# select --profile), so next to perf's symbol table — which says *where*
# host time went — the script prints the engine's own accounting of *what*
# the time bought: serial commit vs dispatch vs barrier wait vs merge,
# per barrier site, with the lane-imbalance ratio.
#
# Usage:
#   tools/profile.sh                 # record the default row, print top 10
#   tools/profile.sh --p 4096 --n 16384   # any mcbsim select flag rides along
#   tools/profile.sh --list          # show what would run; needs no perf
#
# --list exists for CI: tools/ci.sh smokes this script in listing mode on
# machines without perf, so a bitrotted script fails CI even where the
# profiler itself cannot run.
set -euo pipefail

cd "$(dirname "$0")/.."

TOP_N=10
OUT_DIR=build-perf
ROW=(--p 65536 --k 4 --n 262144 --engine parallel --threads 0 --profile)

list_mode=0
extra=()
for arg in "$@"; do
  case "$arg" in
    --list) list_mode=1 ;;
    *) extra+=("$arg") ;;
  esac
done
# Extra flags override the default row wholesale: mixing "--p 4096" into
# the default geometry would profile a workload nobody asked for.
if [ "${#extra[@]}" -gt 0 ]; then
  ROW=("${extra[@]}" --engine parallel --threads 0 --profile)
fi

CMD=("$OUT_DIR/tools/mcbsim" select "${ROW[@]}")

if [ "$list_mode" -eq 1 ]; then
  echo "profile.sh would run:"
  echo "  cmake --preset perf && cmake --build --preset perf -j --target mcbsim"
  echo "  perf record -g -o $OUT_DIR/perf.data -- ${CMD[*]}"
  echo "  perf report -i $OUT_DIR/perf.data --stdio | head  (top $TOP_N symbols)"
  exit 0
fi

if ! command -v perf > /dev/null 2>&1; then
  echo "error: perf not found on PATH (try --list for a dry description)" >&2
  exit 2
fi

echo "=== [perf preset] configure + build mcbsim ==="
cmake --preset perf
cmake --build --preset perf -j "$(nproc)" --target mcbsim

echo "=== perf record: ${CMD[*]} ==="
perf record -g -o "$OUT_DIR/perf.data" -- "${CMD[@]}" > "$OUT_DIR/profile_run.txt"

echo "=== engine flight recorder (same run) ==="
# --profile makes mcbsim print the recorder's breakdown after the run
# summary; everything from its "host profile:" top line onward is ours.
sed -n '/^host profile:/,$p' "$OUT_DIR/profile_run.txt"

echo "=== top $TOP_N hot symbols ==="
# --percent-limit 0 keeps tiny symbols out of the cut; the sed strips
# perf's comment preamble so exactly TOP_N symbol rows print.
perf report -i "$OUT_DIR/perf.data" --stdio --sort symbol \
  | sed '/^#/d;/^\s*$/d' | head -n "$TOP_N"
echo "full profile: perf report -i $OUT_DIR/perf.data"
