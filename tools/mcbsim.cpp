// mcbsim — command-line driver for the MCB library.
//
//   mcbsim sort    --p 16 --k 4 --n 1024 [--shape even] [--seed 1]
//                  [--algorithm auto] [--engine event|reference|parallel]
//                  [--threads N] [--json]
//   mcbsim select  --p 16 --k 4 --n 1024 [--rank d | median by default]
//                  [--shape even] [--seed 1]
//                  [--engine event|reference|parallel] [--threads N] [--json]
//   mcbsim psum    --p 16 --k 4 [--op add|max|min]
//   mcbsim trace   --p 4  [--n 48] [--seed 3]   (cycle-level channel dump)
//   mcbsim bounds  --p 16 --k 4 --n 1024 [--shape even] [--d rank]
//   mcbsim sweep   --p 8,16 --k 2,4 --n 1024 [--shapes even,zipf]
//                  [--algorithms auto,select] [--seeds 3] [--seed 1]
//                  [--threads N] [--engine event|reference|parallel]
//                  [--check] [--json]
//
// For sort/select/trace, --threads N sets the parallel engine's worker count
// (0 = all hardware threads) and requires --engine parallel. For sweep,
// --threads is the trial-pool width and works with any engine.
//   mcbsim gates   <bench.json>   (scan a BENCH_*.json for gate results)
//   mcbsim report  <run.json|sweep.json>   (deterministic Markdown report)
//
// sort/select/trace/sweep accept --check: attach the model-conformance
// checker (src/check) to the run and fail (exit 1) on any violation.
//
// sort/select/trace accept the telemetry flags (sweep accepts --obs):
//   --obs               collect phase spans + per-channel timeline; spans
//                       are reconciled against PhaseStats (exit 1 on any
//                       disagreement) and serialized under "obs" in --json
//   --trace-out f.json  write a Chrome trace-event / Perfetto JSON trace
//                       (implies --obs); load it in ui.perfetto.dev
//   --obs-buckets N     timeline resolution (default 256 buckets)
//
// Exit code 0 on success; 2 on usage errors; 1 on conformance violations or
// failed trials; `gates` exits 1 on a failed enforced gate and 3 when
// unenforced gates are present (tools/ci.sh turns 3 into a loud WARNING).
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "harness/sweep.hpp"
#include "mcb/mcb.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "se/shout_echo.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace mcb;

util::Shape parse_shape(const std::string& s) {
  if (s == "even") return util::Shape::kEven;
  if (s == "zipf") return util::Shape::kZipf;
  if (s == "onehot") return util::Shape::kOneHot;
  if (s == "random") return util::Shape::kRandom;
  if (s == "staircase") return util::Shape::kStaircase;
  throw std::invalid_argument("unknown shape '" + s +
                              "' (even|zipf|onehot|random|staircase)");
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(s);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  if (out.empty()) {
    throw std::invalid_argument("empty list '" + s + "'");
  }
  return out;
}

std::vector<std::size_t> parse_uint_list(const std::string& s) {
  std::vector<std::size_t> out;
  for (const auto& item : split_list(s)) {
    // std::stoull accepts leading whitespace and a sign, wrapping "-5" to
    // 18446744073709551611 silently; these flags are counts and sizes, so
    // only plain digit strings are meaningful.
    if (item.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument("malformed unsigned integer '" + item +
                                  "' (digits only)");
    }
    std::size_t pos = 0;
    const auto v = std::stoull(item, &pos);
    if (pos != item.size()) {
      throw std::invalid_argument("malformed integer '" + item + "'");
    }
    out.push_back(v);
  }
  return out;
}

void print_stats_json(const RunStats& stats, std::ostream& os) {
  os << obs::run_stats_json(stats);
}

/// The run's logical identity: everything needed to regenerate its workload
/// deterministically (mcbsim report recomputes theory bounds from this).
void print_config_json(std::ostream& os, std::size_t p, std::size_t k,
                       std::size_t n, const std::string& shape,
                       std::uint64_t seed, const std::string& engine,
                       std::optional<std::size_t> rank) {
  os << "\"config\":{\"p\":" << p << ",\"k\":" << k << ",\"n\":" << n
     << ",\"shape\":\"" << util::json_escape(shape) << "\",\"seed\":" << seed
     << ",\"engine\":\"" << util::json_escape(engine) << '"';
  if (rank) os << ",\"rank\":" << *rank;
  os << '}';
}

void print_stats_text(const RunStats& stats, std::ostream& os) {
  util::Table t;
  t.header({"phase", "cycles", "messages"});
  for (const auto& ph : stats.phases) {
    t.row({util::Table::txt(ph.name), util::Table::num(ph.cycles),
           util::Table::num(ph.messages)});
  }
  t.row({util::Table::txt("TOTAL"), util::Table::num(stats.cycles),
         util::Table::num(stats.messages)});
  os << t;
}

/// Parallel-engine thread accounting for text output. The engine silently
/// caps the request at min(hardware, stripe count); saying what actually
/// ran keeps "--threads 64 was slower than I expected" debuggable.
void print_thread_note(const SimConfig& cfg, const RunStats& stats,
                       std::ostream& os) {
  if (cfg.engine != Engine::kParallel) return;
  os << "threads: requested "
     << (stats.threads_requested == 0 ? std::string("0 (hardware)")
                                      : std::to_string(stats.threads_requested))
     << ", effective " << stats.threads_effective;
  if (stats.threads_requested != 0 &&
      stats.threads_effective < stats.threads_requested) {
    os << "  [capped at min(hardware, stripe count)]";
  }
  os << "\n";
}

/// Shared telemetry flags (sort/select/trace). --trace-out implies --obs:
/// the exporter needs the collectors.
struct ObsOptions {
  bool on = false;
  std::string trace_out;
  std::size_t buckets = 256;
};

ObsOptions parse_obs(const util::Cli& cli) {
  ObsOptions o;
  o.trace_out = cli.get_string("trace-out", "");
  o.buckets = cli.get_uint("obs-buckets", 256);
  o.on = cli.get_bool("obs") || !o.trace_out.empty();
  return o;
}

/// Post-run telemetry steps: derive idle time, write the Perfetto trace if
/// requested (with the profiler's host-time pid when one ran), and
/// reconcile spans against PhaseStats. Returns the reconciliation problems
/// (empty = reconciled); callers exit 1 on any.
std::vector<std::string> finish_obs(const ObsOptions& opts,
                                    const SimConfig& cfg,
                                    const RunStats& stats,
                                    const obs::Recorder& recorder,
                                    obs::Timeline& timeline,
                                    const obs::Profiler* profiler) {
  timeline.finalize(stats.cycles);
  if (!opts.trace_out.empty()) {
    std::ofstream out(opts.trace_out);
    if (!out) {
      throw std::invalid_argument("cannot write trace to " + opts.trace_out);
    }
    out << obs::chrome_trace_json(stats, cfg, &recorder, &timeline, profiler);
  }
  return recorder.reconcile(stats);
}

int report_obs_problems(const std::vector<std::string>& problems) {
  for (const auto& line : problems) {
    std::cerr << "span reconciliation: " << line << '\n';
  }
  return problems.empty() ? 0 : 1;
}

/// The "obs" member of the run JSON: span summaries, the bucketed timeline
/// and the metrics registry. All fields are deterministic.
void print_obs_json(std::ostream& os, const RunStats& stats,
                    const obs::Recorder& recorder,
                    const obs::Timeline& timeline) {
  os << "\"obs\":{\"spans\":[";
  const auto sums = recorder.summarize();
  for (std::size_t i = 0; i < sums.size(); ++i) {
    const auto& s = sums[i];
    if (i) os << ',';
    os << "{\"name\":\"" << util::json_escape(s.name)
       << "\",\"count\":" << s.count << ",\"cycles\":" << s.cycles
       << ",\"messages\":" << s.messages << '}';
  }
  os << "],\"spans_dropped\":" << recorder.dropped()
     << ",\"timeline\":{\"bucket_cycles\":" << timeline.bucket_cycles()
     << ",\"total_cycles\":" << timeline.total_cycles()
     << ",\"busy_cycles\":" << timeline.busy_cycles()
     << ",\"idle_cycles\":" << timeline.idle_cycles()
     << ",\"reads\":" << timeline.total_reads()
     << ",\"silent_reads\":" << timeline.total_silent_reads()
     << ",\"multi_reads\":" << timeline.total_multi_reads()
     << ",\"channels\":[";
  const auto& per_channel = timeline.writes_per_channel();
  for (std::size_t c = 0; c < timeline.k(); ++c) {
    if (c) os << ',';
    os << "{\"writes\":" << per_channel[c] << ",\"buckets\":[";
    const auto& buckets = timeline.buckets();
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (b) os << ',';
      os << buckets[b].writes[c];
    }
    os << "]}";
  }
  os << "]},\"metrics\":"
     << obs::collect_metrics(stats, &recorder, &timeline).json() << '}';
}

void print_obs_text(std::ostream& os, const RunStats& stats,
                    const obs::Recorder& recorder,
                    const obs::Timeline& timeline) {
  const auto sums = recorder.summarize();
  if (!sums.empty()) {
    util::Table t;
    t.header({"span", "count", "cycles", "messages"});
    for (const auto& s : sums) {
      t.row({util::Table::txt(s.name), util::Table::num(s.count),
             util::Table::num(s.cycles), util::Table::num(s.messages)});
    }
    os << t;
  }
  os << obs::collect_metrics(stats, &recorder, &timeline).render();
}

std::vector<std::size_t> input_sizes(
    const std::vector<std::vector<Word>>& inputs) {
  std::vector<std::size_t> sizes;
  sizes.reserve(inputs.size());
  for (const auto& in : inputs) sizes.push_back(in.size());
  return sizes;
}

/// Shared --engine flag (sort/select/trace/sweep): all engines expose the
/// same observable behaviour, so every run — checked ones in particular —
/// can be replayed on any of them.
Engine parse_engine(const util::Cli& cli) {
  const auto engine = cli.get_string("engine", "event");
  if (engine == "reference") return Engine::kReference;
  if (engine == "event") return Engine::kEventDriven;
  if (engine == "parallel") return Engine::kParallel;
  throw std::invalid_argument("unknown engine '" + engine +
                              "' (event|reference|parallel)");
}

/// Shared --engine/--threads pair for the single-run commands
/// (sort/select/trace). --threads picks the parallel engine's worker count
/// (0 = hardware) and is rejected with the serial engines — a silent fall
/// back to serial would misreport what was measured. (sweep has its own
/// --threads: the trial-pool width; parallel-engine trials there are
/// single-threaded, see harness::run_trial.)
void apply_engine_flags(const util::Cli& cli, SimConfig& cfg) {
  cfg.engine = parse_engine(cli);
  const auto threads = cli.get_uint("threads", 0);
  if (threads != 0 && cfg.engine != Engine::kParallel) {
    throw std::invalid_argument(
        "--threads requires --engine parallel (the serial engines run on "
        "one thread)");
  }
  cfg.threads = threads;
}

int cmd_sort(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto n = cli.get_uint("n", 1024);
  const auto shape_name = cli.get_string("shape", "even");
  const auto shape = parse_shape(shape_name);
  const auto seed = cli.get_uint("seed", 1);
  const auto algorithm =
      algo::sort_algorithm_from_string(cli.get_string("algorithm", "auto"));
  const bool json = cli.get_bool("json");
  const bool do_check = cli.get_bool("check");
  const auto obs_opts = parse_obs(cli);
  const bool profile = cli.get_bool("profile");

  auto w = util::make_workload(n, p, shape, seed);
  SimConfig cfg{.p = p, .k = k};
  apply_engine_flags(cli, cfg);
  obs::Recorder recorder;
  std::optional<obs::Timeline> timeline;
  if (obs_opts.on) {
    timeline.emplace(k, obs_opts.buckets);
    cfg.span_sink = &recorder;
  }
  std::optional<obs::Profiler> profiler;
  if (profile) {
    profiler.emplace();
    cfg.profiler = &*profiler;
  }
  TraceSink* tail = obs_opts.on ? &*timeline : nullptr;
  std::optional<check::ConformanceChecker> checker;
  if (do_check) {
    checker.emplace(cfg, tail);
    checker->expect_sorting_bounds(input_sizes(w.inputs));
  }
  auto res = algo::sort(cfg, w.inputs, {.algorithm = algorithm},
                        do_check ? static_cast<TraceSink*>(&*checker) : tail);
  if (do_check) checker->finish(res.run.stats);
  std::vector<std::string> obs_problems;
  if (obs_opts.on) {
    obs_problems = finish_obs(obs_opts, cfg, res.run.stats, recorder,
                              *timeline, profile ? &*profiler : nullptr);
  }
  if (json) {
    std::cout << "{\"algorithm\":\""
              << util::json_escape(algo::to_string(res.used)) << "\",";
    print_config_json(std::cout, p, k, n, shape_name, seed,
                      cli.get_string("engine", "event"), std::nullopt);
    std::cout << ",\"stats\":";
    print_stats_json(res.run.stats, std::cout);
    if (obs_opts.on) {
      std::cout << ',';
      print_obs_json(std::cout, res.run.stats, recorder, *timeline);
    }
    if (do_check) std::cout << ",\"conformance\":" << checker->report().json();
    if (profile) std::cout << ",\"host_profile\":" << profiler->json();
    std::cout << "}\n";
  } else {
    std::cout << "sorted n=" << n << " over MCB(" << p << "," << k
              << ") with " << algo::to_string(res.used) << "\n";
    print_stats_text(res.run.stats, std::cout);
    print_thread_note(cfg, res.run.stats, std::cout);
    if (obs_opts.on) print_obs_text(std::cout, res.run.stats, recorder, *timeline);
    if (do_check) std::cout << checker->report().summary();
    if (profile) std::cout << profiler->text();
  }
  const int obs_rc = report_obs_problems(obs_problems);
  return do_check && !checker->report().ok() ? 1 : obs_rc;
}

int cmd_select(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto n = cli.get_uint("n", 1024);
  const auto shape_name = cli.get_string("shape", "even");
  const auto shape = parse_shape(shape_name);
  const auto seed = cli.get_uint("seed", 1);
  const auto d = cli.get_uint("rank", (n + 1) / 2);
  const bool json = cli.get_bool("json");
  const bool shout_echo = cli.get_bool("shout-echo");
  const bool do_check = cli.get_bool("check");
  const auto obs_opts = parse_obs(cli);
  const bool profile = cli.get_bool("profile");

  auto w = util::make_workload(n, p, shape, seed);
  if (shout_echo) {
    if (do_check) {
      std::cerr << "warning: --check applies to MCB runs only; the "
                   "shout-echo model has no cycle-level observer\n";
    }
    auto res = se::se_select_rank(w.inputs, d);
    if (json) {
      std::cout << "{\"value\":" << res.value
                << ",\"activities\":" << res.stats.activities
                << ",\"messages\":" << res.stats.messages << "}\n";
    } else {
      std::cout << "N[" << d << "] = " << res.value << "  ("
                << res.stats.activities << " shout-echo activities, "
                << res.stats.messages << " messages)\n";
    }
    return 0;
  }
  SimConfig cfg{.p = p, .k = k};
  apply_engine_flags(cli, cfg);
  obs::Recorder recorder;
  std::optional<obs::Timeline> timeline;
  if (obs_opts.on) {
    timeline.emplace(k, obs_opts.buckets);
    cfg.span_sink = &recorder;
  }
  std::optional<obs::Profiler> profiler;
  if (profile) {
    profiler.emplace();
    cfg.profiler = &*profiler;
  }
  TraceSink* tail = obs_opts.on ? &*timeline : nullptr;
  std::optional<check::ConformanceChecker> checker;
  if (do_check) {
    checker.emplace(cfg, tail);
    checker->expect_selection_bounds(input_sizes(w.inputs), d);
  }
  auto res =
      algo::select_rank(cfg, w.inputs, d, {},
                        do_check ? static_cast<TraceSink*>(&*checker) : tail);
  if (do_check) checker->finish(res.stats);
  std::vector<std::string> obs_problems;
  if (obs_opts.on) {
    obs_problems = finish_obs(obs_opts, cfg, res.stats, recorder, *timeline,
                              profile ? &*profiler : nullptr);
  }
  if (json) {
    std::cout << "{\"algorithm\":\"selection\",\"value\":" << res.value
              << ",\"filter_phases\":" << res.filter_phases << ',';
    print_config_json(std::cout, p, k, n, shape_name, seed,
                      cli.get_string("engine", "event"), d);
    std::cout << ",\"stats\":";
    print_stats_json(res.stats, std::cout);
    if (obs_opts.on) {
      std::cout << ',';
      print_obs_json(std::cout, res.stats, recorder, *timeline);
    }
    if (do_check) std::cout << ",\"conformance\":" << checker->report().json();
    if (profile) std::cout << ",\"host_profile\":" << profiler->json();
    std::cout << "}\n";
  } else {
    std::cout << "N[" << d << "] = " << res.value << "  ("
              << res.filter_phases << " filtering phases)\n";
    print_stats_text(res.stats, std::cout);
    print_thread_note(cfg, res.stats, std::cout);
    if (obs_opts.on) print_obs_text(std::cout, res.stats, recorder, *timeline);
    if (do_check) std::cout << checker->report().summary();
    if (profile) std::cout << profiler->text();
  }
  const int obs_rc = report_obs_problems(obs_problems);
  return do_check && !checker->report().ok() ? 1 : obs_rc;
}

// Online serving mode: one persistent network answers a deterministic
// query stream with batched multi-rank selection (src/serve). The report —
// JSON with --json, Markdown otherwise — carries only model-level fields,
// so it is byte-identical across engines and thread counts for one seed;
// tools/ci.sh cmp's it across --threads under TSan. The exceptions are
// opt-in host telemetry: --profile adds the quarantined "host_profile"
// member, and --obs/--trace-out attach the span/timeline collectors to the
// whole session (the obs fields themselves stay deterministic).
int cmd_serve(const util::Cli& cli) {
  serve::ServeConfig sc;
  sc.sim.p = cli.get_uint("p", 16);
  sc.sim.k = cli.get_uint("k", 4);
  sc.n = cli.get_uint("n", sc.sim.p * 64);
  sc.seed = cli.get_uint("seed", 1);
  sc.queries = cli.get_uint("queries", 64);
  sc.batch = cli.get_uint("batch", 8);
  sc.classes = serve::parse_classes(
      cli.get_string("classes", "rank:4,topk:2,churn:1"));
  sc.verify = cli.get_bool("verify");
  const auto obs_opts = parse_obs(cli);
  const bool profile = cli.get_bool("profile");
  obs::Recorder recorder;
  std::optional<obs::Timeline> timeline;
  if (obs_opts.on) {
    timeline.emplace(sc.sim.k, obs_opts.buckets);
    sc.sim.span_sink = &recorder;
    sc.sink = &*timeline;
  }
  std::optional<obs::Profiler> profiler;
  if (profile) {
    profiler.emplace();
    sc.sim.profiler = &*profiler;
  }
  apply_engine_flags(cli, sc.sim);
  const auto rep = serve::run_server(sc);

  // Session-aggregate identity for the obs exporters: the serving loop is
  // many short runs on one network, so the recorder/timeline carry the
  // union of all batch runs (cycle timestamps overlay per batch — the
  // timeline is an across-batches aggregate, not one run's lane chart).
  // Span reconciliation is skipped: it checks a single run's PhaseStats.
  RunStats agg;
  agg.cycles = rep.total_cycles;
  agg.messages = rep.total_messages;
  if (obs_opts.on) {
    timeline->finalize(rep.total_cycles);
    if (!obs_opts.trace_out.empty()) {
      std::ofstream out(obs_opts.trace_out);
      if (!out) {
        throw std::invalid_argument("cannot write trace to " +
                                    obs_opts.trace_out);
      }
      out << obs::chrome_trace_json(agg, sc.sim, &recorder, &*timeline,
                                    profile ? &*profiler : nullptr);
    }
  }
  if (cli.get_bool("json")) {
    std::string doc = rep.json();
    if (obs_opts.on) {
      // Splice the "obs" member in before the document's closing brace —
      // rep.json() owns the (deterministic) rest of the document.
      std::ostringstream os;
      os << ',';
      print_obs_json(os, agg, recorder, *timeline);
      doc.insert(doc.size() - 1, os.str());
    }
    std::cout << doc << '\n';
  } else {
    std::cout << rep.markdown();
    if (obs_opts.on) print_obs_text(std::cout, agg, recorder, *timeline);
  }
  return 0;
}

int cmd_psum(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto op_name = cli.get_string("op", "add");
  algo::SumOp op = op_name == "add"   ? algo::SumOp::add()
                   : op_name == "max" ? algo::SumOp::max()
                   : op_name == "min" ? algo::SumOp::min()
                                      : throw std::invalid_argument(
                                            "unknown op (add|max|min)");
  Network net({.p = p, .k = k});
  std::vector<Word> results(p);
  auto prog = [](Proc& self, const algo::SumOp& o, Word& out) -> ProcMain {
    auto res = co_await algo::partial_sums(
        self, static_cast<Word>(self.id() + 1), o, {.with_total = true});
    out = res.self;
  };
  for (ProcId i = 0; i < p; ++i) {
    net.install(i, prog(net.proc(i), op, results[i]));
  }
  auto stats = net.run();
  std::cout << "prefix " << op_name << " of 1..p over MCB(" << p << "," << k
            << "): " << stats.cycles << " cycles, " << stats.messages
            << " messages\n";
  for (std::size_t i = 0; i < p; ++i) {
    std::cout << results[i] << (i + 1 < p ? ' ' : '\n');
  }
  return 0;
}

int cmd_trace(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 4);
  const auto n = cli.get_uint("n", p * p * (p - 1));
  const auto seed = cli.get_uint("seed", 3);
  const bool do_check = cli.get_bool("check");
  const auto obs_opts = parse_obs(cli);
  const bool profile = cli.get_bool("profile");
  ChannelTrace trace(cli.get_uint("limit", 256));
  auto w = util::make_workload(n, p, util::Shape::kEven, seed);
  SimConfig cfg{.p = p, .k = p};
  apply_engine_flags(cli, cfg);
  obs::Recorder recorder;
  std::optional<obs::Timeline> timeline;
  if (obs_opts.on) {
    timeline.emplace(p, obs_opts.buckets);
    cfg.span_sink = &recorder;
  }
  std::optional<obs::Profiler> profiler;
  if (profile) {
    profiler.emplace();
    cfg.profiler = &*profiler;
  }
  // Observers chain: with --check the checker tees the unmodified event
  // stream into the tee, which fans it out to the channel trace and (with
  // --obs) the timeline.
  TeeSink tee({&trace, obs_opts.on ? &*timeline : nullptr});
  TraceSink* tail = tee.as_sink();
  std::optional<check::ConformanceChecker> checker;
  if (do_check) {
    checker.emplace(cfg, tail);
    checker->expect_sorting_bounds(input_sizes(w.inputs));
  }
  auto res = algo::columnsort_even(
      cfg, w.inputs, {},
      do_check ? static_cast<TraceSink*>(&*checker) : tail);
  if (do_check) checker->finish(res.run.stats);
  std::vector<std::string> obs_problems;
  if (obs_opts.on) {
    obs_problems = finish_obs(obs_opts, cfg, res.run.stats, recorder,
                              *timeline, profile ? &*profiler : nullptr);
  }
  std::cout << "columnsort on MCB(" << p << "," << p << "), n=" << n << ": "
            << res.run.stats.cycles << " cycles\n"
            << trace.render(p);
  if (obs_opts.on) {
    print_obs_text(std::cout, res.run.stats, recorder, *timeline);
  }
  if (do_check) std::cout << checker->report().summary();
  if (profile) std::cout << profiler->text();
  const int obs_rc = report_obs_problems(obs_problems);
  return do_check && !checker->report().ok() ? 1 : obs_rc;
}

// Renders the deterministic Markdown report of a previously captured
// `mcbsim sort/select --json` or `mcbsim sweep --json` document.
int cmd_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open " << path << '\n';
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::cout << obs::report_markdown(util::json_parse(buf.str()));
  return 0;
}

// Scans a BENCH_*.json artifact for gate objects — any JSON object with an
// "enforced" member, wherever it nests — using the strict parser in
// util/json (the previous grep-based scrape in tools/ci.sh broke on nested
// objects). Exit codes: 0 all gates enforced and passed; 1 an enforced gate
// failed (or the file has no gates at all); 3 unenforced gates present.
int cmd_gates(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open " << path << '\n';
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto doc = util::json_parse(buf.str());

  struct Gate {
    std::string where;
    std::string name;
    bool enforced = false;
    bool passed = false;
  };
  std::vector<Gate> gates;
  // Walk the whole document; a "gate" is any object carrying an "enforced"
  // boolean (matches both the named gates array of BENCH_simspeed.json and
  // the single anonymous gate object of BENCH_sweep.json).
  auto walk = [&gates](const auto& self, const util::JsonValue& v,
                       const std::string& where) -> void {
    if (v.is_object()) {
      const auto* enforced = v.find("enforced");
      if (enforced != nullptr &&
          enforced->kind() == util::JsonValue::Kind::kBool) {
        Gate g;
        g.where = where;
        const auto* name = v.find("name");
        g.name = name != nullptr &&
                         name->kind() == util::JsonValue::Kind::kString
                     ? name->as_string()
                     : where;
        g.enforced = enforced->as_bool();
        const auto* passed = v.find("passed");
        g.passed = passed != nullptr &&
                   passed->kind() == util::JsonValue::Kind::kBool &&
                   passed->as_bool();
        gates.push_back(std::move(g));
        return;
      }
      for (const auto& [key, member] : v.members()) {
        self(self, member, where + "." + key);
      }
    } else if (v.is_array()) {
      for (std::size_t i = 0; i < v.size(); ++i) {
        self(self, v.at(i), where + "[" + std::to_string(i) + "]");
      }
    }
  };
  walk(walk, doc, "$");

  if (gates.empty()) {
    std::cerr << "error: no gate objects (no \"enforced\" member) in "
              << path << '\n';
    return 1;
  }
  bool any_failed = false;
  bool any_unenforced = false;
  for (const auto& g : gates) {
    const bool failed = g.enforced && !g.passed;
    any_failed = any_failed || failed;
    any_unenforced = any_unenforced || !g.enforced;
    std::cout << (failed           ? "FAILED    "
                  : !g.enforced    ? "UNENFORCED"
                                   : "PASSED    ")
              << "  " << g.name << "  (" << g.where << ")\n";
  }
  if (any_failed) return 1;
  return any_unenforced ? 3 : 0;
}

// Strict-parses a JSON document and re-serializes it canonically with every
// host-telemetry field removed, at any nesting depth: the quarantined
// "host_profile" subtrees plus the per-run host fields of "stats"
// (wall clock, throughput, thread identity, arena counters). What survives
// is exactly the deterministic model-level content, so CI can `cmp` a
// profiled run against an unprofiled one — the determinism contract the
// profiler must not break, made executable.
int cmd_strip_host(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open " << path << '\n';
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  static const std::vector<std::string> kHostFields = {
      "host_profile",     "sim_wall_ns",       "cycles_per_sec",
      "threads_requested", "threads_effective", "frame_allocs",
      "frame_frees",      "frame_reuses",      "arena_bytes_peak",
      "arena_hit_rate"};
  std::cout << util::json_serialize_without(util::json_parse(buf.str()),
                                            kHostFields)
            << '\n';
  return 0;
}

int cmd_bounds(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto n = cli.get_uint("n", 1024);
  const auto shape = parse_shape(cli.get_string("shape", "even"));
  const auto d = cli.get_uint("d", (n + 1) / 2);
  auto sizes = util::cardinalities(n, p, shape, cli.get_uint("seed", 1));

  util::Table t;
  t.header({"quantity", "value"});
  t.row({util::Table::txt("sorting msg lower (Thm 3)"),
         util::Table::num(theory::sorting_messages_lower(sizes), 1)});
  t.row({util::Table::txt("sorting cyc lower (Cor 3/Thm 5)"),
         util::Table::num(theory::sorting_cycles_lower(sizes, k), 1)});
  t.row({util::Table::txt("selection msg lower (Thm 1)"),
         util::Table::num(theory::selection_messages_lower(sizes), 1)});
  t.row({util::Table::txt("selection msg lower rank d (Thm 2)"),
         util::Table::num(theory::selection_messages_lower_rank(sizes, d),
                          1)});
  t.row({util::Table::txt("selection msg Theta term (Cor 7)"),
         util::Table::num(theory::selection_messages_term(p, k, n), 1)});
  std::cout << t;
  return 0;
}

int cmd_sweep(const util::Cli& cli) {
  harness::Sweep sweep;
  sweep.ps = parse_uint_list(cli.get_string("p", "16"));
  sweep.ks = parse_uint_list(cli.get_string("k", "4"));
  sweep.ns = parse_uint_list(cli.get_string("n", "1024"));
  sweep.shapes.clear();
  for (const auto& s : split_list(cli.get_string("shapes", "even"))) {
    sweep.shapes.push_back(parse_shape(s));
  }
  sweep.algorithms = split_list(cli.get_string("algorithms", "auto"));
  // Reject typos up front instead of failing every trial.
  for (const auto& a : sweep.algorithms) {
    if (a != "select") algo::sort_algorithm_from_string(a);
  }
  sweep.base_seed = cli.get_uint("seed", 1);
  sweep.seeds = cli.get_uint("seeds", 1);
  sweep.engine = parse_engine(cli);
  const auto threads = cli.get_uint("threads", 0);
  const bool json = cli.get_bool("json");
  sweep.check = cli.get_bool("check");
  sweep.obs = cli.get_bool("obs");

  auto run = harness::run_sweep(sweep, {.threads = threads});

  if (json) {
    // Deterministic serialization: byte-identical regardless of --threads.
    std::cout << harness::sweep_json(run);
    return 0;
  }

  util::Table t;
  t.header({"p", "k", "n", "shape", "algorithm", "trials", "failed",
            "cyc mean", "cyc p95", "msg mean", "msg p95", "aux max",
            "cyc/pred", "msg/pred"});
  for (const auto& agg : run.aggregates) {
    t.row({util::Table::num(agg.point.p), util::Table::num(agg.point.k),
           util::Table::num(agg.point.n),
           util::Table::txt(util::to_string(agg.point.shape)),
           util::Table::txt(agg.point.algorithm),
           util::Table::num(agg.trials), util::Table::num(agg.failed),
           util::Table::num(agg.cycles.mean, 1),
           util::Table::num(agg.cycles.p95, 0),
           util::Table::num(agg.messages.mean, 1),
           util::Table::num(agg.messages.p95, 0),
           util::Table::num(agg.peak_aux_words.max, 0),
           util::Table::num(agg.cycles_vs_predicted, 2),
           util::Table::num(agg.messages_vs_predicted, 2)});
  }
  std::cout << t;
  std::size_t failed = 0;
  for (const auto& res : run.results) {
    if (!res.ok()) ++failed;
  }
  std::cout << run.results.size() << " trials over "
            << run.aggregates.size() << " grid points on "
            << run.threads_used << " threads in "
            << static_cast<double>(run.wall_ns) / 1e6 << " ms";
  if (failed > 0) std::cout << " (" << failed << " FAILED)";
  std::cout << "\n";
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    if (!run.results[i].ok()) {
      std::cerr << "trial " << i << ": " << run.results[i].error << "\n";
    }
  }
  return failed == 0 ? 0 : 1;
}

int usage() {
  std::cerr <<
      "usage: mcbsim <sort|select|serve|psum|trace|bounds|sweep|gates|"
      "report|strip-host> [--flags]\n"
      "  sort    --p --k --n [--shape] [--seed] [--algorithm] [--engine]"
      " [--threads] [--check] [--json]\n"
      "          [--obs] [--trace-out f.json] [--obs-buckets N] [--profile]\n"
      "  select  --p --k --n [--rank] [--shape] [--seed] [--shout-echo]"
      " [--engine] [--threads] [--check]\n"
      "          [--json] [--obs] [--trace-out f.json] [--obs-buckets N]"
      " [--profile]\n"
      "  serve   --p --k --n [--seed] --queries N"
      " [--classes rank:4,topk:2,churn:1]\n"
      "          [--batch B] [--engine] [--threads] [--verify] [--json]\n"
      "          [--obs] [--trace-out f.json] [--obs-buckets N] [--profile]\n"
      "          one persistent network answers a seeded query stream;\n"
      "          output is byte-identical across engines/threads per seed\n"
      "  psum    --p --k [--op add|max|min]\n"
      "  trace   --p [--n] [--seed] [--limit] [--engine] [--threads]"
      " [--check] [--obs] [--trace-out f.json] [--profile]\n"
      "  bounds  --p --k --n [--shape] [--d]\n"
      "  sweep   --p 8,16 --k 2,4 --n 1024,4096 [--shapes even,zipf]\n"
      "          [--algorithms auto,select] [--seeds S] [--seed B]\n"
      "          [--threads N] [--engine event|reference|parallel] [--check]"
      " [--obs] [--json]\n"
      "  gates   <bench.json>   exit 0 = all gates enforced+passed,\n"
      "          1 = enforced gate failed, 3 = unenforced gates present\n"
      "  report  <run.json|sweep.json|serve.json>   render a deterministic\n"
      "          Markdown report (phases, spans, sparklines, theory ratios)\n"
      "  strip-host <any.json>  re-serialize canonically with host-telemetry\n"
      "          fields (host_profile, sim_wall_ns, ...) removed, for\n"
      "          byte-comparing profiled against unprofiled runs\n"
      "--engine picks the simulator loop (event|reference|parallel; all are\n"
      "observably identical). For sort/select/trace, --threads N sets the\n"
      "parallel engine's worker count (0 = hardware) and requires --engine\n"
      "parallel; for sweep it is the trial-pool width with any engine.\n"
      "--check attaches the model-conformance checker (src/check): exit 1\n"
      "and a violation report on any model-rule breach.\n"
      "--obs collects phase spans and a per-channel timeline; --trace-out\n"
      "writes a Chrome trace-event / Perfetto JSON trace (implies --obs).\n"
      "--profile attaches the host-time engine profiler: per cycle-batch\n"
      "commit/dispatch/wait/merge wall time, lane busy time and imbalance\n"
      "ratio, quarantined under \"host_profile\" (strip-host removes it).\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // `gates` and `report` take a positional file path, which the flag
    // grammar of util::Cli does not cover — dispatch them before Cli::parse.
    if (argc >= 2 && std::string(argv[1]) == "gates") {
      if (argc != 3) return usage();
      return cmd_gates(argv[2]);
    }
    if (argc >= 2 && std::string(argv[1]) == "report") {
      if (argc != 3) return usage();
      return cmd_report(argv[2]);
    }
    if (argc >= 2 && std::string(argv[1]) == "strip-host") {
      if (argc != 3) return usage();
      return cmd_strip_host(argv[2]);
    }
    const auto cli = util::Cli::parse(argc, argv);
    int rc;
    if (cli.command() == "sort") {
      rc = cmd_sort(cli);
    } else if (cli.command() == "select") {
      rc = cmd_select(cli);
    } else if (cli.command() == "serve") {
      rc = cmd_serve(cli);
    } else if (cli.command() == "psum") {
      rc = cmd_psum(cli);
    } else if (cli.command() == "trace") {
      rc = cmd_trace(cli);
    } else if (cli.command() == "bounds") {
      rc = cmd_bounds(cli);
    } else if (cli.command() == "sweep") {
      rc = cmd_sweep(cli);
    } else {
      return usage();
    }
    for (const auto& f : cli.unused()) {
      std::cerr << "warning: unused flag --" << f << '\n';
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
