// mcbsim — command-line driver for the MCB library.
//
//   mcbsim sort    --p 16 --k 4 --n 1024 [--shape even] [--seed 1]
//                  [--algorithm auto] [--json]
//   mcbsim select  --p 16 --k 4 --n 1024 [--rank d | median by default]
//                  [--shape even] [--seed 1] [--json]
//   mcbsim psum    --p 16 --k 4 [--op add|max|min]
//   mcbsim trace   --p 4  [--n 48] [--seed 3]   (cycle-level channel dump)
//   mcbsim bounds  --p 16 --k 4 --n 1024 [--shape even] [--d rank]
//   mcbsim sweep   --p 8,16 --k 2,4 --n 1024 [--shapes even,zipf]
//                  [--algorithms auto,select] [--seeds 3] [--seed 1]
//                  [--threads N] [--engine event|reference] [--json]
//
// Exit code 0 on success; 2 on usage errors.
#include <iostream>
#include <sstream>

#include "harness/sweep.hpp"
#include "mcb/mcb.hpp"
#include "se/shout_echo.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace mcb;

util::Shape parse_shape(const std::string& s) {
  if (s == "even") return util::Shape::kEven;
  if (s == "zipf") return util::Shape::kZipf;
  if (s == "onehot") return util::Shape::kOneHot;
  if (s == "random") return util::Shape::kRandom;
  if (s == "staircase") return util::Shape::kStaircase;
  throw std::invalid_argument("unknown shape '" + s +
                              "' (even|zipf|onehot|random|staircase)");
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(s);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  if (out.empty()) {
    throw std::invalid_argument("empty list '" + s + "'");
  }
  return out;
}

std::vector<std::size_t> parse_uint_list(const std::string& s) {
  std::vector<std::size_t> out;
  for (const auto& item : split_list(s)) {
    std::size_t pos = 0;
    const auto v = std::stoull(item, &pos);
    if (pos != item.size()) {
      throw std::invalid_argument("malformed integer '" + item + "'");
    }
    out.push_back(v);
  }
  return out;
}

void print_stats_json(const RunStats& stats, std::ostream& os) {
  os << "{\"cycles\":" << stats.cycles << ",\"messages\":" << stats.messages
     << ",\"peak_aux_words\":" << stats.max_peak_aux()
     << ",\"sim_wall_ns\":" << stats.sim_wall_ns
     << ",\"proc_resumes\":" << stats.proc_resumes
     << ",\"cycles_per_sec\":" << stats.cycles_per_sec
     << ",\"frame_allocs\":" << stats.frame_allocs
     << ",\"frame_frees\":" << stats.frame_frees
     << ",\"arena_bytes_peak\":" << stats.arena_bytes_peak
     << ",\"arena_hit_rate\":" << stats.arena_hit_rate << ",\"phases\":[";
  for (std::size_t i = 0; i < stats.phases.size(); ++i) {
    const auto& ph = stats.phases[i];
    if (i) os << ',';
    os << "{\"name\":\"" << util::json_escape(ph.name)
       << "\",\"cycles\":" << ph.cycles << ",\"messages\":" << ph.messages
       << '}';
  }
  os << "]}";
}

void print_stats_text(const RunStats& stats, std::ostream& os) {
  util::Table t;
  t.header({"phase", "cycles", "messages"});
  for (const auto& ph : stats.phases) {
    t.row({util::Table::txt(ph.name), util::Table::num(ph.cycles),
           util::Table::num(ph.messages)});
  }
  t.row({util::Table::txt("TOTAL"), util::Table::num(stats.cycles),
         util::Table::num(stats.messages)});
  os << t;
}

int cmd_sort(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto n = cli.get_uint("n", 1024);
  const auto shape = parse_shape(cli.get_string("shape", "even"));
  const auto seed = cli.get_uint("seed", 1);
  const auto algorithm =
      algo::sort_algorithm_from_string(cli.get_string("algorithm", "auto"));
  const bool json = cli.get_bool("json");

  auto w = util::make_workload(n, p, shape, seed);
  auto res = algo::sort({.p = p, .k = k}, w.inputs, {.algorithm = algorithm});
  if (json) {
    std::cout << "{\"algorithm\":\""
              << util::json_escape(algo::to_string(res.used)) << "\",";
    std::cout << "\"stats\":";
    print_stats_json(res.run.stats, std::cout);
    std::cout << "}\n";
  } else {
    std::cout << "sorted n=" << n << " over MCB(" << p << "," << k
              << ") with " << algo::to_string(res.used) << "\n";
    print_stats_text(res.run.stats, std::cout);
  }
  return 0;
}

int cmd_select(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto n = cli.get_uint("n", 1024);
  const auto shape = parse_shape(cli.get_string("shape", "even"));
  const auto seed = cli.get_uint("seed", 1);
  const auto d = cli.get_uint("rank", (n + 1) / 2);
  const bool json = cli.get_bool("json");
  const bool shout_echo = cli.get_bool("shout-echo");

  auto w = util::make_workload(n, p, shape, seed);
  if (shout_echo) {
    auto res = se::se_select_rank(w.inputs, d);
    if (json) {
      std::cout << "{\"value\":" << res.value
                << ",\"activities\":" << res.stats.activities
                << ",\"messages\":" << res.stats.messages << "}\n";
    } else {
      std::cout << "N[" << d << "] = " << res.value << "  ("
                << res.stats.activities << " shout-echo activities, "
                << res.stats.messages << " messages)\n";
    }
    return 0;
  }
  auto res = algo::select_rank({.p = p, .k = k}, w.inputs, d);
  if (json) {
    std::cout << "{\"value\":" << res.value
              << ",\"filter_phases\":" << res.filter_phases << ",\"stats\":";
    print_stats_json(res.stats, std::cout);
    std::cout << "}\n";
  } else {
    std::cout << "N[" << d << "] = " << res.value << "  ("
              << res.filter_phases << " filtering phases)\n";
    print_stats_text(res.stats, std::cout);
  }
  return 0;
}

int cmd_psum(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto op_name = cli.get_string("op", "add");
  algo::SumOp op = op_name == "add"   ? algo::SumOp::add()
                   : op_name == "max" ? algo::SumOp::max()
                   : op_name == "min" ? algo::SumOp::min()
                                      : throw std::invalid_argument(
                                            "unknown op (add|max|min)");
  Network net({.p = p, .k = k});
  std::vector<Word> results(p);
  auto prog = [](Proc& self, const algo::SumOp& o, Word& out) -> ProcMain {
    auto res = co_await algo::partial_sums(
        self, static_cast<Word>(self.id() + 1), o, {.with_total = true});
    out = res.self;
  };
  for (ProcId i = 0; i < p; ++i) {
    net.install(i, prog(net.proc(i), op, results[i]));
  }
  auto stats = net.run();
  std::cout << "prefix " << op_name << " of 1..p over MCB(" << p << "," << k
            << "): " << stats.cycles << " cycles, " << stats.messages
            << " messages\n";
  for (std::size_t i = 0; i < p; ++i) {
    std::cout << results[i] << (i + 1 < p ? ' ' : '\n');
  }
  return 0;
}

int cmd_trace(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 4);
  const auto n = cli.get_uint("n", p * p * (p - 1));
  const auto seed = cli.get_uint("seed", 3);
  ChannelTrace trace(cli.get_uint("limit", 256));
  auto w = util::make_workload(n, p, util::Shape::kEven, seed);
  auto res = algo::columnsort_even({.p = p, .k = p}, w.inputs, {}, &trace);
  std::cout << "columnsort on MCB(" << p << "," << p << "), n=" << n << ": "
            << res.run.stats.cycles << " cycles\n"
            << trace.render(p);
  return 0;
}

int cmd_bounds(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto n = cli.get_uint("n", 1024);
  const auto shape = parse_shape(cli.get_string("shape", "even"));
  const auto d = cli.get_uint("d", (n + 1) / 2);
  auto sizes = util::cardinalities(n, p, shape, cli.get_uint("seed", 1));

  util::Table t;
  t.header({"quantity", "value"});
  t.row({util::Table::txt("sorting msg lower (Thm 3)"),
         util::Table::num(theory::sorting_messages_lower(sizes), 1)});
  t.row({util::Table::txt("sorting cyc lower (Cor 3/Thm 5)"),
         util::Table::num(theory::sorting_cycles_lower(sizes, k), 1)});
  t.row({util::Table::txt("selection msg lower (Thm 1)"),
         util::Table::num(theory::selection_messages_lower(sizes), 1)});
  t.row({util::Table::txt("selection msg lower rank d (Thm 2)"),
         util::Table::num(theory::selection_messages_lower_rank(sizes, d),
                          1)});
  t.row({util::Table::txt("selection msg Theta term (Cor 7)"),
         util::Table::num(theory::selection_messages_term(p, k, n), 1)});
  std::cout << t;
  return 0;
}

int cmd_sweep(const util::Cli& cli) {
  harness::Sweep sweep;
  sweep.ps = parse_uint_list(cli.get_string("p", "16"));
  sweep.ks = parse_uint_list(cli.get_string("k", "4"));
  sweep.ns = parse_uint_list(cli.get_string("n", "1024"));
  sweep.shapes.clear();
  for (const auto& s : split_list(cli.get_string("shapes", "even"))) {
    sweep.shapes.push_back(parse_shape(s));
  }
  sweep.algorithms = split_list(cli.get_string("algorithms", "auto"));
  // Reject typos up front instead of failing every trial.
  for (const auto& a : sweep.algorithms) {
    if (a != "select") algo::sort_algorithm_from_string(a);
  }
  sweep.base_seed = cli.get_uint("seed", 1);
  sweep.seeds = cli.get_uint("seeds", 1);
  const auto engine = cli.get_string("engine", "event");
  if (engine == "reference") {
    sweep.engine = Engine::kReference;
  } else if (engine != "event") {
    throw std::invalid_argument("unknown engine '" + engine +
                                "' (event|reference)");
  }
  const auto threads = cli.get_uint("threads", 0);
  const bool json = cli.get_bool("json");

  auto run = harness::run_sweep(sweep, {.threads = threads});

  if (json) {
    // Deterministic serialization: byte-identical regardless of --threads.
    std::cout << harness::sweep_json(run);
    return 0;
  }

  util::Table t;
  t.header({"p", "k", "n", "shape", "algorithm", "trials", "failed",
            "cyc mean", "cyc p95", "msg mean", "msg p95", "aux max",
            "cyc/pred", "msg/pred"});
  for (const auto& agg : run.aggregates) {
    t.row({util::Table::num(agg.point.p), util::Table::num(agg.point.k),
           util::Table::num(agg.point.n),
           util::Table::txt(util::to_string(agg.point.shape)),
           util::Table::txt(agg.point.algorithm),
           util::Table::num(agg.trials), util::Table::num(agg.failed),
           util::Table::num(agg.cycles.mean, 1),
           util::Table::num(agg.cycles.p95, 0),
           util::Table::num(agg.messages.mean, 1),
           util::Table::num(agg.messages.p95, 0),
           util::Table::num(agg.peak_aux_words.max, 0),
           util::Table::num(agg.cycles_vs_predicted, 2),
           util::Table::num(agg.messages_vs_predicted, 2)});
  }
  std::cout << t;
  std::size_t failed = 0;
  for (const auto& res : run.results) {
    if (!res.ok()) ++failed;
  }
  std::cout << run.results.size() << " trials over "
            << run.aggregates.size() << " grid points on "
            << run.threads_used << " threads in "
            << static_cast<double>(run.wall_ns) / 1e6 << " ms";
  if (failed > 0) std::cout << " (" << failed << " FAILED)";
  std::cout << "\n";
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    if (!run.results[i].ok()) {
      std::cerr << "trial " << i << ": " << run.results[i].error << "\n";
    }
  }
  return failed == 0 ? 0 : 1;
}

int usage() {
  std::cerr <<
      "usage: mcbsim <sort|select|psum|trace|bounds|sweep> [--flags]\n"
      "  sort    --p --k --n [--shape] [--seed] [--algorithm] [--json]\n"
      "  select  --p --k --n [--rank] [--shape] [--seed] [--shout-echo] "
      "[--json]\n"
      "  psum    --p --k [--op add|max|min]\n"
      "  trace   --p [--n] [--seed] [--limit]\n"
      "  bounds  --p --k --n [--shape] [--d]\n"
      "  sweep   --p 8,16 --k 2,4 --n 1024,4096 [--shapes even,zipf]\n"
      "          [--algorithms auto,select] [--seeds S] [--seed B]\n"
      "          [--threads N] [--engine event|reference] [--json]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto cli = util::Cli::parse(argc, argv);
    int rc;
    if (cli.command() == "sort") {
      rc = cmd_sort(cli);
    } else if (cli.command() == "select") {
      rc = cmd_select(cli);
    } else if (cli.command() == "psum") {
      rc = cmd_psum(cli);
    } else if (cli.command() == "trace") {
      rc = cmd_trace(cli);
    } else if (cli.command() == "bounds") {
      rc = cmd_bounds(cli);
    } else if (cli.command() == "sweep") {
      rc = cmd_sweep(cli);
    } else {
      return usage();
    }
    for (const auto& f : cli.unused()) {
      std::cerr << "warning: unused flag --" << f << '\n';
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
