// mcbsim — command-line driver for the MCB library.
//
//   mcbsim sort    --p 16 --k 4 --n 1024 [--shape even] [--seed 1]
//                  [--algorithm auto] [--json]
//   mcbsim select  --p 16 --k 4 --n 1024 [--rank d | median by default]
//                  [--shape even] [--seed 1] [--json]
//   mcbsim psum    --p 16 --k 4 [--op add|max|min]
//   mcbsim trace   --p 4  [--n 48] [--seed 3]   (cycle-level channel dump)
//   mcbsim bounds  --p 16 --k 4 --n 1024 [--shape even] [--d rank]
//
// Exit code 0 on success; 2 on usage errors.
#include <iostream>

#include "mcb/mcb.hpp"
#include "se/shout_echo.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace mcb;

util::Shape parse_shape(const std::string& s) {
  if (s == "even") return util::Shape::kEven;
  if (s == "zipf") return util::Shape::kZipf;
  if (s == "onehot") return util::Shape::kOneHot;
  if (s == "random") return util::Shape::kRandom;
  if (s == "staircase") return util::Shape::kStaircase;
  throw std::invalid_argument("unknown shape '" + s +
                              "' (even|zipf|onehot|random|staircase)");
}

algo::SortAlgorithm parse_algorithm(const std::string& s) {
  if (s == "auto") return algo::SortAlgorithm::kAuto;
  if (s == "columnsort") return algo::SortAlgorithm::kColumnsortEven;
  if (s == "virtual") return algo::SortAlgorithm::kVirtualColumnsort;
  if (s == "recursive") return algo::SortAlgorithm::kRecursive;
  if (s == "uneven") return algo::SortAlgorithm::kUnevenColumnsort;
  if (s == "ranksort") return algo::SortAlgorithm::kRankSort;
  if (s == "mergesort") return algo::SortAlgorithm::kMergeSort;
  if (s == "central") return algo::SortAlgorithm::kCentral;
  throw std::invalid_argument(
      "unknown algorithm '" + s +
      "' (auto|columnsort|virtual|recursive|uneven|ranksort|mergesort|"
      "central)");
}

void print_stats_json(const RunStats& stats, std::ostream& os) {
  os << "{\"cycles\":" << stats.cycles << ",\"messages\":" << stats.messages
     << ",\"peak_aux_words\":" << stats.max_peak_aux() << ",\"phases\":[";
  for (std::size_t i = 0; i < stats.phases.size(); ++i) {
    const auto& ph = stats.phases[i];
    if (i) os << ',';
    os << "{\"name\":\"" << ph.name << "\",\"cycles\":" << ph.cycles
       << ",\"messages\":" << ph.messages << '}';
  }
  os << "]}";
}

void print_stats_text(const RunStats& stats, std::ostream& os) {
  util::Table t;
  t.header({"phase", "cycles", "messages"});
  for (const auto& ph : stats.phases) {
    t.row({util::Table::txt(ph.name), util::Table::num(ph.cycles),
           util::Table::num(ph.messages)});
  }
  t.row({util::Table::txt("TOTAL"), util::Table::num(stats.cycles),
         util::Table::num(stats.messages)});
  os << t;
}

int cmd_sort(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto n = cli.get_uint("n", 1024);
  const auto shape = parse_shape(cli.get_string("shape", "even"));
  const auto seed = cli.get_uint("seed", 1);
  const auto algorithm = parse_algorithm(cli.get_string("algorithm", "auto"));
  const bool json = cli.get_bool("json");

  auto w = util::make_workload(n, p, shape, seed);
  auto res = algo::sort({.p = p, .k = k}, w.inputs, {.algorithm = algorithm});
  if (json) {
    std::cout << "{\"algorithm\":\"" << algo::to_string(res.used) << "\",";
    std::cout << "\"stats\":";
    print_stats_json(res.run.stats, std::cout);
    std::cout << "}\n";
  } else {
    std::cout << "sorted n=" << n << " over MCB(" << p << "," << k
              << ") with " << algo::to_string(res.used) << "\n";
    print_stats_text(res.run.stats, std::cout);
  }
  return 0;
}

int cmd_select(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto n = cli.get_uint("n", 1024);
  const auto shape = parse_shape(cli.get_string("shape", "even"));
  const auto seed = cli.get_uint("seed", 1);
  const auto d = cli.get_uint("rank", (n + 1) / 2);
  const bool json = cli.get_bool("json");
  const bool shout_echo = cli.get_bool("shout-echo");

  auto w = util::make_workload(n, p, shape, seed);
  if (shout_echo) {
    auto res = se::se_select_rank(w.inputs, d);
    if (json) {
      std::cout << "{\"value\":" << res.value
                << ",\"activities\":" << res.stats.activities
                << ",\"messages\":" << res.stats.messages << "}\n";
    } else {
      std::cout << "N[" << d << "] = " << res.value << "  ("
                << res.stats.activities << " shout-echo activities, "
                << res.stats.messages << " messages)\n";
    }
    return 0;
  }
  auto res = algo::select_rank({.p = p, .k = k}, w.inputs, d);
  if (json) {
    std::cout << "{\"value\":" << res.value
              << ",\"filter_phases\":" << res.filter_phases << ",\"stats\":";
    print_stats_json(res.stats, std::cout);
    std::cout << "}\n";
  } else {
    std::cout << "N[" << d << "] = " << res.value << "  ("
              << res.filter_phases << " filtering phases)\n";
    print_stats_text(res.stats, std::cout);
  }
  return 0;
}

int cmd_psum(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto op_name = cli.get_string("op", "add");
  algo::SumOp op = op_name == "add"   ? algo::SumOp::add()
                   : op_name == "max" ? algo::SumOp::max()
                   : op_name == "min" ? algo::SumOp::min()
                                      : throw std::invalid_argument(
                                            "unknown op (add|max|min)");
  Network net({.p = p, .k = k});
  std::vector<Word> results(p);
  auto prog = [](Proc& self, const algo::SumOp& o, Word& out) -> ProcMain {
    auto res = co_await algo::partial_sums(
        self, static_cast<Word>(self.id() + 1), o, {.with_total = true});
    out = res.self;
  };
  for (ProcId i = 0; i < p; ++i) {
    net.install(i, prog(net.proc(i), op, results[i]));
  }
  auto stats = net.run();
  std::cout << "prefix " << op_name << " of 1..p over MCB(" << p << "," << k
            << "): " << stats.cycles << " cycles, " << stats.messages
            << " messages\n";
  for (std::size_t i = 0; i < p; ++i) {
    std::cout << results[i] << (i + 1 < p ? ' ' : '\n');
  }
  return 0;
}

int cmd_trace(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 4);
  const auto n = cli.get_uint("n", p * p * (p - 1));
  const auto seed = cli.get_uint("seed", 3);
  ChannelTrace trace(cli.get_uint("limit", 256));
  auto w = util::make_workload(n, p, util::Shape::kEven, seed);
  auto res = algo::columnsort_even({.p = p, .k = p}, w.inputs, {}, &trace);
  std::cout << "columnsort on MCB(" << p << "," << p << "), n=" << n << ": "
            << res.run.stats.cycles << " cycles\n"
            << trace.render(p);
  return 0;
}

int cmd_bounds(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto n = cli.get_uint("n", 1024);
  const auto shape = parse_shape(cli.get_string("shape", "even"));
  const auto d = cli.get_uint("d", (n + 1) / 2);
  auto sizes = util::cardinalities(n, p, shape, cli.get_uint("seed", 1));

  util::Table t;
  t.header({"quantity", "value"});
  t.row({util::Table::txt("sorting msg lower (Thm 3)"),
         util::Table::num(theory::sorting_messages_lower(sizes), 1)});
  t.row({util::Table::txt("sorting cyc lower (Cor 3/Thm 5)"),
         util::Table::num(theory::sorting_cycles_lower(sizes, k), 1)});
  t.row({util::Table::txt("selection msg lower (Thm 1)"),
         util::Table::num(theory::selection_messages_lower(sizes), 1)});
  t.row({util::Table::txt("selection msg lower rank d (Thm 2)"),
         util::Table::num(theory::selection_messages_lower_rank(sizes, d),
                          1)});
  t.row({util::Table::txt("selection msg Theta term (Cor 7)"),
         util::Table::num(theory::selection_messages_term(p, k, n), 1)});
  std::cout << t;
  return 0;
}

int usage() {
  std::cerr <<
      "usage: mcbsim <sort|select|psum|trace|bounds> [--flags]\n"
      "  sort    --p --k --n [--shape] [--seed] [--algorithm] [--json]\n"
      "  select  --p --k --n [--rank] [--shape] [--seed] [--shout-echo] "
      "[--json]\n"
      "  psum    --p --k [--op add|max|min]\n"
      "  trace   --p [--n] [--seed] [--limit]\n"
      "  bounds  --p --k --n [--shape] [--d]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto cli = util::Cli::parse(argc, argv);
    int rc;
    if (cli.command() == "sort") {
      rc = cmd_sort(cli);
    } else if (cli.command() == "select") {
      rc = cmd_select(cli);
    } else if (cli.command() == "psum") {
      rc = cmd_psum(cli);
    } else if (cli.command() == "trace") {
      rc = cmd_trace(cli);
    } else if (cli.command() == "bounds") {
      rc = cmd_bounds(cli);
    } else {
      return usage();
    }
    for (const auto& f : cli.unused()) {
      std::cerr << "warning: unused flag --" << f << '\n';
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
