// mcbsim — command-line driver for the MCB library.
//
//   mcbsim sort    --p 16 --k 4 --n 1024 [--shape even] [--seed 1]
//                  [--algorithm auto] [--engine event|reference] [--json]
//   mcbsim select  --p 16 --k 4 --n 1024 [--rank d | median by default]
//                  [--shape even] [--seed 1] [--engine event|reference]
//                  [--json]
//   mcbsim psum    --p 16 --k 4 [--op add|max|min]
//   mcbsim trace   --p 4  [--n 48] [--seed 3]   (cycle-level channel dump)
//   mcbsim bounds  --p 16 --k 4 --n 1024 [--shape even] [--d rank]
//   mcbsim sweep   --p 8,16 --k 2,4 --n 1024 [--shapes even,zipf]
//                  [--algorithms auto,select] [--seeds 3] [--seed 1]
//                  [--threads N] [--engine event|reference] [--check]
//                  [--json]
//   mcbsim gates   <bench.json>   (scan a BENCH_*.json for gate results)
//
// sort/select/trace/sweep accept --check: attach the model-conformance
// checker (src/check) to the run and fail (exit 1) on any violation.
//
// Exit code 0 on success; 2 on usage errors; 1 on conformance violations or
// failed trials; `gates` exits 1 on a failed enforced gate and 3 when
// unenforced gates are present (tools/ci.sh turns 3 into a loud WARNING).
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "harness/sweep.hpp"
#include "mcb/mcb.hpp"
#include "se/shout_echo.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace mcb;

util::Shape parse_shape(const std::string& s) {
  if (s == "even") return util::Shape::kEven;
  if (s == "zipf") return util::Shape::kZipf;
  if (s == "onehot") return util::Shape::kOneHot;
  if (s == "random") return util::Shape::kRandom;
  if (s == "staircase") return util::Shape::kStaircase;
  throw std::invalid_argument("unknown shape '" + s +
                              "' (even|zipf|onehot|random|staircase)");
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(s);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  if (out.empty()) {
    throw std::invalid_argument("empty list '" + s + "'");
  }
  return out;
}

std::vector<std::size_t> parse_uint_list(const std::string& s) {
  std::vector<std::size_t> out;
  for (const auto& item : split_list(s)) {
    std::size_t pos = 0;
    const auto v = std::stoull(item, &pos);
    if (pos != item.size()) {
      throw std::invalid_argument("malformed integer '" + item + "'");
    }
    out.push_back(v);
  }
  return out;
}

void print_stats_json(const RunStats& stats, std::ostream& os) {
  os << "{\"cycles\":" << stats.cycles << ",\"messages\":" << stats.messages
     << ",\"peak_aux_words\":" << stats.max_peak_aux()
     << ",\"sim_wall_ns\":" << stats.sim_wall_ns
     << ",\"proc_resumes\":" << stats.proc_resumes
     << ",\"cycles_per_sec\":" << stats.cycles_per_sec
     << ",\"frame_allocs\":" << stats.frame_allocs
     << ",\"frame_frees\":" << stats.frame_frees
     << ",\"arena_bytes_peak\":" << stats.arena_bytes_peak
     << ",\"arena_hit_rate\":" << stats.arena_hit_rate << ",\"phases\":[";
  for (std::size_t i = 0; i < stats.phases.size(); ++i) {
    const auto& ph = stats.phases[i];
    if (i) os << ',';
    os << "{\"name\":\"" << util::json_escape(ph.name)
       << "\",\"cycles\":" << ph.cycles << ",\"messages\":" << ph.messages
       << '}';
  }
  os << "]}";
}

void print_stats_text(const RunStats& stats, std::ostream& os) {
  util::Table t;
  t.header({"phase", "cycles", "messages"});
  for (const auto& ph : stats.phases) {
    t.row({util::Table::txt(ph.name), util::Table::num(ph.cycles),
           util::Table::num(ph.messages)});
  }
  t.row({util::Table::txt("TOTAL"), util::Table::num(stats.cycles),
         util::Table::num(stats.messages)});
  os << t;
}

std::vector<std::size_t> input_sizes(
    const std::vector<std::vector<Word>>& inputs) {
  std::vector<std::size_t> sizes;
  sizes.reserve(inputs.size());
  for (const auto& in : inputs) sizes.push_back(in.size());
  return sizes;
}

/// Shared --engine flag (sort/select/trace/sweep): both engines expose the
/// same observable behaviour, so every run — checked ones in particular —
/// can be replayed on either.
Engine parse_engine(const util::Cli& cli) {
  const auto engine = cli.get_string("engine", "event");
  if (engine == "reference") return Engine::kReference;
  if (engine == "event") return Engine::kEventDriven;
  throw std::invalid_argument("unknown engine '" + engine +
                              "' (event|reference)");
}

int cmd_sort(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto n = cli.get_uint("n", 1024);
  const auto shape = parse_shape(cli.get_string("shape", "even"));
  const auto seed = cli.get_uint("seed", 1);
  const auto algorithm =
      algo::sort_algorithm_from_string(cli.get_string("algorithm", "auto"));
  const bool json = cli.get_bool("json");
  const bool do_check = cli.get_bool("check");

  auto w = util::make_workload(n, p, shape, seed);
  const SimConfig cfg{.p = p, .k = k, .engine = parse_engine(cli)};
  std::optional<check::ConformanceChecker> checker;
  if (do_check) {
    checker.emplace(cfg);
    checker->expect_sorting_bounds(input_sizes(w.inputs));
  }
  auto res = algo::sort(cfg, w.inputs, {.algorithm = algorithm},
                        do_check ? &*checker : nullptr);
  if (do_check) checker->finish(res.run.stats);
  if (json) {
    std::cout << "{\"algorithm\":\""
              << util::json_escape(algo::to_string(res.used)) << "\",";
    std::cout << "\"stats\":";
    print_stats_json(res.run.stats, std::cout);
    if (do_check) std::cout << ",\"conformance\":" << checker->report().json();
    std::cout << "}\n";
  } else {
    std::cout << "sorted n=" << n << " over MCB(" << p << "," << k
              << ") with " << algo::to_string(res.used) << "\n";
    print_stats_text(res.run.stats, std::cout);
    if (do_check) std::cout << checker->report().summary();
  }
  return do_check && !checker->report().ok() ? 1 : 0;
}

int cmd_select(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto n = cli.get_uint("n", 1024);
  const auto shape = parse_shape(cli.get_string("shape", "even"));
  const auto seed = cli.get_uint("seed", 1);
  const auto d = cli.get_uint("rank", (n + 1) / 2);
  const bool json = cli.get_bool("json");
  const bool shout_echo = cli.get_bool("shout-echo");
  const bool do_check = cli.get_bool("check");

  auto w = util::make_workload(n, p, shape, seed);
  if (shout_echo) {
    if (do_check) {
      std::cerr << "warning: --check applies to MCB runs only; the "
                   "shout-echo model has no cycle-level observer\n";
    }
    auto res = se::se_select_rank(w.inputs, d);
    if (json) {
      std::cout << "{\"value\":" << res.value
                << ",\"activities\":" << res.stats.activities
                << ",\"messages\":" << res.stats.messages << "}\n";
    } else {
      std::cout << "N[" << d << "] = " << res.value << "  ("
                << res.stats.activities << " shout-echo activities, "
                << res.stats.messages << " messages)\n";
    }
    return 0;
  }
  const SimConfig cfg{.p = p, .k = k, .engine = parse_engine(cli)};
  std::optional<check::ConformanceChecker> checker;
  if (do_check) {
    checker.emplace(cfg);
    checker->expect_selection_bounds(input_sizes(w.inputs), d);
  }
  auto res = algo::select_rank(cfg, w.inputs, d, {},
                               do_check ? &*checker : nullptr);
  if (do_check) checker->finish(res.stats);
  if (json) {
    std::cout << "{\"value\":" << res.value
              << ",\"filter_phases\":" << res.filter_phases << ",\"stats\":";
    print_stats_json(res.stats, std::cout);
    if (do_check) std::cout << ",\"conformance\":" << checker->report().json();
    std::cout << "}\n";
  } else {
    std::cout << "N[" << d << "] = " << res.value << "  ("
              << res.filter_phases << " filtering phases)\n";
    print_stats_text(res.stats, std::cout);
    if (do_check) std::cout << checker->report().summary();
  }
  return do_check && !checker->report().ok() ? 1 : 0;
}

int cmd_psum(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto op_name = cli.get_string("op", "add");
  algo::SumOp op = op_name == "add"   ? algo::SumOp::add()
                   : op_name == "max" ? algo::SumOp::max()
                   : op_name == "min" ? algo::SumOp::min()
                                      : throw std::invalid_argument(
                                            "unknown op (add|max|min)");
  Network net({.p = p, .k = k});
  std::vector<Word> results(p);
  auto prog = [](Proc& self, const algo::SumOp& o, Word& out) -> ProcMain {
    auto res = co_await algo::partial_sums(
        self, static_cast<Word>(self.id() + 1), o, {.with_total = true});
    out = res.self;
  };
  for (ProcId i = 0; i < p; ++i) {
    net.install(i, prog(net.proc(i), op, results[i]));
  }
  auto stats = net.run();
  std::cout << "prefix " << op_name << " of 1..p over MCB(" << p << "," << k
            << "): " << stats.cycles << " cycles, " << stats.messages
            << " messages\n";
  for (std::size_t i = 0; i < p; ++i) {
    std::cout << results[i] << (i + 1 < p ? ' ' : '\n');
  }
  return 0;
}

int cmd_trace(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 4);
  const auto n = cli.get_uint("n", p * p * (p - 1));
  const auto seed = cli.get_uint("seed", 3);
  const bool do_check = cli.get_bool("check");
  ChannelTrace trace(cli.get_uint("limit", 256));
  auto w = util::make_workload(n, p, util::Shape::kEven, seed);
  const SimConfig cfg{.p = p, .k = p, .engine = parse_engine(cli)};
  // With --check, the checker tees the unmodified event stream into the
  // trace — observers chain.
  std::optional<check::ConformanceChecker> checker;
  if (do_check) {
    checker.emplace(cfg, &trace);
    checker->expect_sorting_bounds(input_sizes(w.inputs));
  }
  auto res = algo::columnsort_even(
      cfg, w.inputs, {},
      do_check ? static_cast<TraceSink*>(&*checker) : &trace);
  if (do_check) checker->finish(res.run.stats);
  std::cout << "columnsort on MCB(" << p << "," << p << "), n=" << n << ": "
            << res.run.stats.cycles << " cycles\n"
            << trace.render(p);
  if (do_check) std::cout << checker->report().summary();
  return do_check && !checker->report().ok() ? 1 : 0;
}

// Scans a BENCH_*.json artifact for gate objects — any JSON object with an
// "enforced" member, wherever it nests — using the strict parser in
// util/json (the previous grep-based scrape in tools/ci.sh broke on nested
// objects). Exit codes: 0 all gates enforced and passed; 1 an enforced gate
// failed (or the file has no gates at all); 3 unenforced gates present.
int cmd_gates(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open " << path << '\n';
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto doc = util::json_parse(buf.str());

  struct Gate {
    std::string where;
    std::string name;
    bool enforced = false;
    bool passed = false;
  };
  std::vector<Gate> gates;
  // Walk the whole document; a "gate" is any object carrying an "enforced"
  // boolean (matches both the named gates array of BENCH_simspeed.json and
  // the single anonymous gate object of BENCH_sweep.json).
  auto walk = [&gates](const auto& self, const util::JsonValue& v,
                       const std::string& where) -> void {
    if (v.is_object()) {
      const auto* enforced = v.find("enforced");
      if (enforced != nullptr &&
          enforced->kind() == util::JsonValue::Kind::kBool) {
        Gate g;
        g.where = where;
        const auto* name = v.find("name");
        g.name = name != nullptr &&
                         name->kind() == util::JsonValue::Kind::kString
                     ? name->as_string()
                     : where;
        g.enforced = enforced->as_bool();
        const auto* passed = v.find("passed");
        g.passed = passed != nullptr &&
                   passed->kind() == util::JsonValue::Kind::kBool &&
                   passed->as_bool();
        gates.push_back(std::move(g));
        return;
      }
      for (const auto& [key, member] : v.members()) {
        self(self, member, where + "." + key);
      }
    } else if (v.is_array()) {
      for (std::size_t i = 0; i < v.size(); ++i) {
        self(self, v.at(i), where + "[" + std::to_string(i) + "]");
      }
    }
  };
  walk(walk, doc, "$");

  if (gates.empty()) {
    std::cerr << "error: no gate objects (no \"enforced\" member) in "
              << path << '\n';
    return 1;
  }
  bool any_failed = false;
  bool any_unenforced = false;
  for (const auto& g : gates) {
    const bool failed = g.enforced && !g.passed;
    any_failed = any_failed || failed;
    any_unenforced = any_unenforced || !g.enforced;
    std::cout << (failed           ? "FAILED    "
                  : !g.enforced    ? "UNENFORCED"
                                   : "PASSED    ")
              << "  " << g.name << "  (" << g.where << ")\n";
  }
  if (any_failed) return 1;
  return any_unenforced ? 3 : 0;
}

int cmd_bounds(const util::Cli& cli) {
  const auto p = cli.get_uint("p", 16);
  const auto k = cli.get_uint("k", 4);
  const auto n = cli.get_uint("n", 1024);
  const auto shape = parse_shape(cli.get_string("shape", "even"));
  const auto d = cli.get_uint("d", (n + 1) / 2);
  auto sizes = util::cardinalities(n, p, shape, cli.get_uint("seed", 1));

  util::Table t;
  t.header({"quantity", "value"});
  t.row({util::Table::txt("sorting msg lower (Thm 3)"),
         util::Table::num(theory::sorting_messages_lower(sizes), 1)});
  t.row({util::Table::txt("sorting cyc lower (Cor 3/Thm 5)"),
         util::Table::num(theory::sorting_cycles_lower(sizes, k), 1)});
  t.row({util::Table::txt("selection msg lower (Thm 1)"),
         util::Table::num(theory::selection_messages_lower(sizes), 1)});
  t.row({util::Table::txt("selection msg lower rank d (Thm 2)"),
         util::Table::num(theory::selection_messages_lower_rank(sizes, d),
                          1)});
  t.row({util::Table::txt("selection msg Theta term (Cor 7)"),
         util::Table::num(theory::selection_messages_term(p, k, n), 1)});
  std::cout << t;
  return 0;
}

int cmd_sweep(const util::Cli& cli) {
  harness::Sweep sweep;
  sweep.ps = parse_uint_list(cli.get_string("p", "16"));
  sweep.ks = parse_uint_list(cli.get_string("k", "4"));
  sweep.ns = parse_uint_list(cli.get_string("n", "1024"));
  sweep.shapes.clear();
  for (const auto& s : split_list(cli.get_string("shapes", "even"))) {
    sweep.shapes.push_back(parse_shape(s));
  }
  sweep.algorithms = split_list(cli.get_string("algorithms", "auto"));
  // Reject typos up front instead of failing every trial.
  for (const auto& a : sweep.algorithms) {
    if (a != "select") algo::sort_algorithm_from_string(a);
  }
  sweep.base_seed = cli.get_uint("seed", 1);
  sweep.seeds = cli.get_uint("seeds", 1);
  sweep.engine = parse_engine(cli);
  const auto threads = cli.get_uint("threads", 0);
  const bool json = cli.get_bool("json");
  sweep.check = cli.get_bool("check");

  auto run = harness::run_sweep(sweep, {.threads = threads});

  if (json) {
    // Deterministic serialization: byte-identical regardless of --threads.
    std::cout << harness::sweep_json(run);
    return 0;
  }

  util::Table t;
  t.header({"p", "k", "n", "shape", "algorithm", "trials", "failed",
            "cyc mean", "cyc p95", "msg mean", "msg p95", "aux max",
            "cyc/pred", "msg/pred"});
  for (const auto& agg : run.aggregates) {
    t.row({util::Table::num(agg.point.p), util::Table::num(agg.point.k),
           util::Table::num(agg.point.n),
           util::Table::txt(util::to_string(agg.point.shape)),
           util::Table::txt(agg.point.algorithm),
           util::Table::num(agg.trials), util::Table::num(agg.failed),
           util::Table::num(agg.cycles.mean, 1),
           util::Table::num(agg.cycles.p95, 0),
           util::Table::num(agg.messages.mean, 1),
           util::Table::num(agg.messages.p95, 0),
           util::Table::num(agg.peak_aux_words.max, 0),
           util::Table::num(agg.cycles_vs_predicted, 2),
           util::Table::num(agg.messages_vs_predicted, 2)});
  }
  std::cout << t;
  std::size_t failed = 0;
  for (const auto& res : run.results) {
    if (!res.ok()) ++failed;
  }
  std::cout << run.results.size() << " trials over "
            << run.aggregates.size() << " grid points on "
            << run.threads_used << " threads in "
            << static_cast<double>(run.wall_ns) / 1e6 << " ms";
  if (failed > 0) std::cout << " (" << failed << " FAILED)";
  std::cout << "\n";
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    if (!run.results[i].ok()) {
      std::cerr << "trial " << i << ": " << run.results[i].error << "\n";
    }
  }
  return failed == 0 ? 0 : 1;
}

int usage() {
  std::cerr <<
      "usage: mcbsim <sort|select|psum|trace|bounds|sweep|gates> [--flags]\n"
      "  sort    --p --k --n [--shape] [--seed] [--algorithm] [--engine]"
      " [--check] [--json]\n"
      "  select  --p --k --n [--rank] [--shape] [--seed] [--shout-echo]"
      " [--engine] [--check] [--json]\n"
      "  psum    --p --k [--op add|max|min]\n"
      "  trace   --p [--n] [--seed] [--limit] [--engine] [--check]\n"
      "  bounds  --p --k --n [--shape] [--d]\n"
      "  sweep   --p 8,16 --k 2,4 --n 1024,4096 [--shapes even,zipf]\n"
      "          [--algorithms auto,select] [--seeds S] [--seed B]\n"
      "          [--threads N] [--engine event|reference] [--check] "
      "[--json]\n"
      "  gates   <bench.json>   exit 0 = all gates enforced+passed,\n"
      "          1 = enforced gate failed, 3 = unenforced gates present\n"
      "--check attaches the model-conformance checker (src/check): exit 1\n"
      "and a violation report on any model-rule breach.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // `gates` takes a positional file path, which the flag grammar of
    // util::Cli does not cover — dispatch it before Cli::parse.
    if (argc >= 2 && std::string(argv[1]) == "gates") {
      if (argc != 3) return usage();
      return cmd_gates(argv[2]);
    }
    const auto cli = util::Cli::parse(argc, argv);
    int rc;
    if (cli.command() == "sort") {
      rc = cmd_sort(cli);
    } else if (cli.command() == "select") {
      rc = cmd_select(cli);
    } else if (cli.command() == "psum") {
      rc = cmd_psum(cli);
    } else if (cli.command() == "trace") {
      rc = cmd_trace(cli);
    } else if (cli.command() == "bounds") {
      rc = cmd_bounds(cli);
    } else if (cli.command() == "sweep") {
      rc = cmd_sweep(cli);
    } else {
      return usage();
    }
    for (const auto& f : cli.unused()) {
      std::cerr << "warning: unused flag --" << f << '\n';
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
