// E10 — baselines: who wins, by what factor, and where the crossovers are.
//
// (a) Columnsort vs the central gather-sort-scatter baseline as k grows:
//     central is flat in k, Columnsort improves ~k-fold.
// (b) Filtering selection vs selection-by-sorting as n grows: the message
//     gap widens like n / (p log(kn/p)); at tiny n the baseline is
//     competitive (the crossover).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace mcb;

void sort_vs_central() {
  bench::section("E10a: Columnsort vs central baseline, n=32768, p=32");
  util::Table t;
  t.header({"k", "central cycles", "columnsort cycles", "speedup"});
  const std::size_t n = 32768, p = 32;
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    auto w = util::make_workload(n, p, util::Shape::kEven, 1);
    auto central = algo::central_sort({.p = p, .k = k}, w.inputs);
    auto cs = algo::columnsort_even({.p = p, .k = k}, w.inputs);
    bench::check_sorted(central.outputs);
    bench::check_sorted(cs.run.outputs);
    t.row({util::Table::num(k), util::Table::num(central.stats.cycles),
           util::Table::num(cs.run.stats.cycles),
           bench::ratio(double(central.stats.cycles),
                        double(cs.run.stats.cycles))});
  }
  std::cout << t << "\ncentral is ~flat in k; Columnsort gains ~k-fold — "
                    "the paper's core speedup.\n";
}

void selection_crossover() {
  bench::section("E10b: filtering vs selection-by-sorting, p=16, k=4 "
                 "(median)");
  util::Table t;
  t.header({"n", "sort-based msg", "filtering msg", "factor",
            "sort-based cyc", "filtering cyc", "factor"});
  for (std::size_t n : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
    auto w = util::make_workload(n, 16, util::Shape::kEven, 2);
    const std::size_t d = (n + 1) / 2;
    auto by_sort = algo::selection_by_sorting({.p = 16, .k = 4}, w.inputs, d);
    auto filt = algo::select_rank({.p = 16, .k = 4}, w.inputs, d);
    if (by_sort.value != filt.value) {
      std::cerr << "BENCH FAILURE: selection mismatch\n";
      std::abort();
    }
    t.row({util::Table::num(n), util::Table::num(by_sort.stats.messages),
           util::Table::num(filt.stats.messages),
           bench::ratio(double(by_sort.stats.messages),
                        double(filt.stats.messages)),
           util::Table::num(by_sort.stats.cycles),
           util::Table::num(filt.stats.cycles),
           bench::ratio(double(by_sort.stats.cycles),
                        double(filt.stats.cycles))});
  }
  std::cout << t << "\nthe factor grows ~ n/log n: filtering wins "
                    "everywhere above trivial sizes and the gap widens.\n";
}

void single_channel_matchup() {
  bench::section("E10c: k=1 vs k=8 for the same problem (n=16384, p=32)");
  util::Table t;
  t.header({"config", "algorithm", "cycles", "messages"});
  auto w = util::make_workload(16384, 32, util::Shape::kEven, 3);
  auto k1 = algo::sort({.p = 32, .k = 1}, w.inputs);
  auto k8 = algo::sort({.p = 32, .k = 8}, w.inputs);
  t.row({util::Table::txt("MCB(32,1)"),
         util::Table::txt(algo::to_string(k1.used)),
         util::Table::num(k1.run.stats.cycles),
         util::Table::num(k1.run.stats.messages)});
  t.row({util::Table::txt("MCB(32,8)"),
         util::Table::txt(algo::to_string(k8.used)),
         util::Table::num(k8.run.stats.cycles),
         util::Table::num(k8.run.stats.messages)});
  std::cout << t;
}

void BM_CentralSort(benchmark::State& state) {
  auto w = util::make_workload(8192, 32, util::Shape::kEven, 1);
  for (auto _ : state) {
    auto res = algo::central_sort({.p = 32, .k = 8}, w.inputs);
    benchmark::DoNotOptimize(res.stats.cycles);
  }
}
BENCHMARK(BM_CentralSort)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sort_vs_central();
  selection_crossover();
  single_channel_matchup();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
