// E3 — Section 6.1 ablation: memory vs structure.
//
// Compares the gather-based Columnsort (representatives hold whole columns,
// Theta(n/k) peak storage), the virtual-column Columnsort with Rank-Sort
// (O(n_i) aux) and with Merge-Sort (O(1) aux), and the two single-channel
// sorts on their own. Cycle/message costs side by side with peak
// per-processor auxiliary storage.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace mcb;

void memory_table() {
  bench::section("E3a: storage vs algorithm at p=32, k=4");
  const std::size_t p = 32, k = 4;
  util::Table t;
  t.header({"algorithm", "n", "cycles", "messages", "peak aux words",
            "n/k", "n/p"});
  for (std::size_t n : {2048u, 8192u, 32768u}) {
    auto w = util::make_workload(n, p, util::Shape::kEven, 1);
    const SimConfig cfg{.p = p, .k = k};

    auto gathered = algo::columnsort_even(cfg, w.inputs);
    auto vrank = algo::virtual_columnsort(
        cfg, w.inputs, {.local_sort = algo::LocalSort::kRankSort});
    auto vmerge = algo::virtual_columnsort(
        cfg, w.inputs, {.local_sort = algo::LocalSort::kMergeSort});
    for (const auto* res : {&gathered, &vrank, &vmerge}) {
      bench::check_sorted(res->run.outputs);
    }
    auto row = [&](const char* name, const algo::ColumnsortEvenResult& r) {
      t.row({util::Table::txt(name), util::Table::num(n),
             util::Table::num(r.run.stats.cycles),
             util::Table::num(r.run.stats.messages),
             util::Table::num(r.run.stats.max_peak_aux()),
             util::Table::num(n / k), util::Table::num(n / p)});
    };
    row("gathered (5.2)", gathered);
    row("virtual+ranksort (6.1)", vrank);
    row("virtual+mergesort (6.1)", vmerge);
  }
  std::cout << t << "\ngathered peaks at ~n/k (a whole column); virtual "
                    "stays near n/p; mergesort's own aux is O(1).\n";
}

void single_channel_table() {
  bench::section("E3b: single-channel sorts (Rank-Sort vs Merge-Sort)");
  util::Table t;
  t.header({"algorithm", "n", "cycles", "cyc/n", "messages", "msg/n",
            "peak aux"});
  for (std::size_t n : {1024u, 4096u, 16384u}) {
    auto w = util::make_workload(n, 16, util::Shape::kEven, 2);
    auto rs = algo::ranksort({.p = 16, .k = 1}, w.inputs);
    auto ms = algo::mergesort({.p = 16, .k = 1}, w.inputs);
    bench::check_sorted(rs.outputs);
    bench::check_sorted(ms.outputs);
    auto row = [&](const char* name, const algo::AlgoResult& r) {
      t.row({util::Table::txt(name), util::Table::num(n),
             util::Table::num(r.stats.cycles),
             bench::ratio(double(r.stats.cycles), double(n)),
             util::Table::num(r.stats.messages),
             bench::ratio(double(r.stats.messages), double(n)),
             util::Table::num(r.stats.max_peak_aux())});
    };
    row("rank-sort", rs);
    row("merge-sort", ms);
  }
  std::cout << t << "\nmerge-sort pays ~2x the cycles of rank-sort for O(1) "
                    "auxiliary storage (4-cycle rounds vs 2 passes).\n";
}

void BM_VirtualColumnsort(benchmark::State& state) {
  auto w = util::make_workload(8192, 32, util::Shape::kEven, 1);
  for (auto _ : state) {
    auto res = algo::virtual_columnsort({.p = 32, .k = 4}, w.inputs);
    benchmark::DoNotOptimize(res.run.stats.cycles);
  }
}
BENCHMARK(BM_VirtualColumnsort)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  memory_table();
  single_channel_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
