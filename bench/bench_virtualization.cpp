// E11 — Section 2's simulation lemma: running MCB(p', k') on MCB(p, k).
//
// Prices real sorting runs on smaller hardware via the implemented
// subround schedule and compares the overhead factor against the paper's
// O((p'/p)(k'/k)) claim and our schedule's (p'/p)^2 (k'/k) (the extra
// factor pays for read scheduling; see mcb/virtualize.hpp).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "mcb/virtualize.hpp"

namespace {

using namespace mcb;

void overhead_table() {
  bench::section("E11: virtualization overhead for a sort on MCB(64,16)");
  const SimConfig virt{.p = 64, .k = 16};
  auto w = util::make_workload(16384, 64, util::Shape::kEven, 1);
  auto res = algo::columnsort_even(virt, w.inputs);
  bench::check_sorted(res.run.outputs);
  std::cout << "virtual run: " << res.run.stats.cycles << " cycles, "
            << res.run.stats.messages << " messages\n";

  util::Table t;
  t.header({"real p", "real k", "h", "c", "real cycles", "overhead",
            "paper h*c", "ours h^2*c", "real messages"});
  for (auto [p, k] : std::vector<std::pair<std::size_t, std::size_t>>{
           {64, 16}, {64, 8}, {64, 4}, {32, 16}, {32, 8}, {16, 16},
           {16, 4}, {8, 8}}) {
    auto cost = virtualization_cost({.p = p, .k = k}, virt, res.run.stats);
    t.row({util::Table::num(p), util::Table::num(k),
           util::Table::num(cost.hosts), util::Table::num(cost.channel_mux),
           util::Table::num(cost.real_cycles),
           util::Table::num(cost.cycle_overhead(res.run.stats), 1),
           util::Table::num(cost.hosts * cost.channel_mux),
           util::Table::num(cost.hosts * cost.hosts * cost.channel_mux),
           util::Table::num(cost.real_messages)});
  }
  std::cout << t << "\nchannel-only virtualization (p'=p) matches the "
                    "paper's bound exactly; hosting h>1 virtual processors "
                    "costs an extra factor h for read scheduling.\n";
}

void executed_table() {
  bench::section("E11b: EXECUTED hosted runs (traffic replayed and verified "
                 "on the real network)");
  util::Table t;
  t.header({"virtual", "real", "h", "c", "virt cycles", "real cycles",
            "overhead", "virt msgs", "real msgs"});
  auto w = util::make_workload(256, 16, util::Shape::kEven, 5);
  for (auto [p, k] : std::vector<std::pair<std::size_t, std::size_t>>{
           {16, 4}, {16, 2}, {8, 4}, {8, 2}, {4, 4}, {4, 2}}) {
    std::vector<std::vector<Word>> outputs(16);
    auto res = run_virtualized(
        {.p = p, .k = k}, {.p = 16, .k = 4}, [&](Network& net) {
          static const auto plan = algo::EvenSortPlan::build(16, 4, 16);
          auto prog = [](Proc& self, const std::vector<Word>& in,
                         std::vector<Word>& out) -> ProcMain {
            std::vector<algo::KV> kv;
            for (Word v : in) kv.push_back(algo::KV{v, 0});
            co_await algo::columnsort_even_collective(self, plan, kv);
            out.clear();
            for (const auto& e : kv) out.push_back(e.key);
          };
          for (ProcId i = 0; i < 16; ++i) {
            net.install(i, prog(net.proc(i), w.inputs[i], outputs[i]));
          }
        });
    bench::check_sorted(outputs);
    t.row({util::Table::txt("MCB(16,4)"),
           util::Table::txt("MCB(" + std::to_string(p) + "," +
                            std::to_string(k) + ")"),
           util::Table::num(res.predicted.hosts),
           util::Table::num(res.predicted.channel_mux),
           util::Table::num(res.virtual_stats.cycles),
           util::Table::num(res.real_stats.cycles),
           util::Table::num(res.predicted.cycle_overhead(res.virtual_stats),
                            1),
           util::Table::num(res.virtual_stats.messages),
           util::Table::num(res.real_stats.messages)});
  }
  std::cout << t << "\nevery row really executed: each virtual message "
                    "crossed a real channel h times and every delivery was "
                    "verified against the virtual run.\n";
}

void BM_VirtualizationCost(benchmark::State& state) {
  RunStats stats;
  stats.cycles = 100000;
  stats.messages = 400000;
  for (auto _ : state) {
    auto cost = virtualization_cost({.p = 16, .k = 4}, {.p = 256, .k = 64},
                                    stats);
    benchmark::DoNotOptimize(cost.real_cycles);
  }
}
BENCHMARK(BM_VirtualizationCost);

}  // namespace

int main(int argc, char** argv) {
  overhead_table();
  executed_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
