// Serving-throughput benchmark: batched multi-rank answering vs
// one-query-at-a-time through the same persistent network.
//
// Both sides run serve::run_server over the identical query stream (pure
// rank-select traffic on the clustered tail-quantile menu — p50/p90/p95/
// p99/p999 of a resident n = 4p dataset). The only knob that differs is
// admission: batch <= 8 coalesces compatible rank queries into one
// algo::select_ranks_on run (the Nowicki-style batched filter, which
// shares the filtering prefix and the termination collection across every
// rank in the batch); batch = 1 answers each query with its own full
// selection run. The cost measure is the model's, not the host's:
// simulated cycles per answered query. Both sides must produce identical
// answers query-by-query — a batched server that answers faster by
// answering differently aborts the bench.
//
// Output: a per-grid-point table plus a machine-readable BENCH_serve.json
// (path overridable as argv[1]) with a `gates` array `mcbsim gates`
// understands.
//
// Gate: batched_vs_sequential — on the headline point (p=4096, k=64,
// n=16384) batching must cut cycles/query by >= 2x. The measured quantity
// is deterministic simulated time, but the point itself is sized for
// multi-core hosts, so the gate follows the repo convention (see
// bench_simspeed's parallel_vs_event) and is enforced only on machines
// with >= 4 hardware threads; narrower machines record it unenforced and
// tools/ci.sh surfaces the warning.
#include <cstddef>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace mcb::bench {
namespace {

constexpr double kRequiredSpeedup = 2.0;
constexpr unsigned kMinHardware = 4;

struct GridPoint {
  std::size_t p, k, n;
  std::size_t queries;
  bool headline = false;  // the gated point
};

struct Mode {
  const char* name;   // "sequential" | "batched"
  std::size_t batch;  // 1 | 8
};

struct ModeResult {
  serve::ServeReport rep;
  double cycles_per_query = 0.0;
};

ModeResult run_mode(const GridPoint& pt, const Mode& mode) {
  serve::ServeConfig sc;
  sc.sim.p = pt.p;
  sc.sim.k = pt.k;
  sc.sim.engine = Engine::kEventDriven;
  sc.n = pt.n;
  sc.seed = 42;
  sc.queries = pt.queries;
  sc.batch = mode.batch;
  // Pure rank traffic: every query is coalescible, so the comparison
  // isolates the batching policy (churn barriers would flush both sides
  // identically and only add noise).
  sc.classes = serve::parse_classes("rank:1");
  ModeResult r;
  r.rep = serve::run_server(sc);
  std::size_t answered = 0;
  for (const auto& q : r.rep.queries) {
    if (q.kind != serve::OpKind::kChurn) ++answered;
  }
  r.cycles_per_query =
      answered == 0 ? 0.0
                    : static_cast<double>(r.rep.total_cycles) /
                          static_cast<double>(answered);
  return r;
}

/// Both admission policies must answer the identical stream identically.
void check_same_answers(const GridPoint& pt, const ModeResult& seq,
                        const ModeResult& bat) {
  if (seq.rep.queries.size() != bat.rep.queries.size()) {
    std::cerr << "BENCH FAILURE: query streams diverged at p=" << pt.p
              << " (" << seq.rep.queries.size() << " vs "
              << bat.rep.queries.size() << " records)\n";
    std::abort();
  }
  for (std::size_t i = 0; i < seq.rep.queries.size(); ++i) {
    const auto& a = seq.rep.queries[i];
    const auto& b = bat.rep.queries[i];
    if (a.rank != b.rank || a.value != b.value) {
      std::cerr << "BENCH FAILURE: batched answer differs at query " << i
                << " p=" << pt.p << ": sequential (d=" << a.rank << ", "
                << a.value << ") vs batched (d=" << b.rank << ", " << b.value
                << ")\n";
      std::abort();
    }
  }
}

std::string json_run_row(const GridPoint& pt, const Mode& mode,
                         const ModeResult& r) {
  std::ostringstream os;
  os << "    {\"mode\": \"" << mode.name << "\", \"p\": " << pt.p
     << ", \"k\": " << pt.k << ", \"n\": " << pt.n
     << ", \"queries\": " << pt.queries << ", \"batch\": " << mode.batch
     << ", \"batches\": " << r.rep.batches
     << ", \"total_cycles\": " << r.rep.total_cycles
     << ", \"total_messages\": " << r.rep.total_messages
     << ", \"filter_phases\": " << r.rep.filter_phases
     << ", \"cycles_per_query\": " << util::json_double(r.cycles_per_query)
     << ", \"frame_allocs\": " << r.rep.frame_allocs
     << ", \"frame_reuses\": " << r.rep.frame_reuses << "}";
  return os.str();
}

}  // namespace
}  // namespace mcb::bench

int main(int argc, char** argv) {
  using namespace mcb;
  using namespace mcb::bench;

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_serve.json";

  // The small point sanity-checks the comparison cheaply; the headline
  // point is the gate: p=4096 over k=64 channels, resident n = 4p, the
  // geometry where one filtering run amortized over a batch of tail
  // quantiles has to beat eight dedicated runs.
  const std::vector<GridPoint> grid = {
      {64, 8, 256, 24},
      {4096, 64, 16384, 24, /*headline=*/true},
  };
  const Mode kSequential{"sequential", 1};
  const Mode kBatched{"batched", 8};

  section("serving throughput: batched multi-rank admission vs one query "
          "per run");
  util::Table t;
  t.header({"p", "k", "n", "queries", "seq batches", "bat batches",
            "seq cyc/q", "bat cyc/q", "speedup"});
  double headline_speedup = 0.0;
  std::vector<std::string> rows_json;
  for (const auto& pt : grid) {
    const auto seq = run_mode(pt, kSequential);
    const auto bat = run_mode(pt, kBatched);
    check_same_answers(pt, seq, bat);
    const double speedup = bat.cycles_per_query == 0.0
                               ? 0.0
                               : seq.cycles_per_query / bat.cycles_per_query;
    if (pt.headline) headline_speedup = speedup;
    t.row({util::Table::num(pt.p), util::Table::num(pt.k),
           util::Table::num(pt.n), util::Table::num(pt.queries),
           util::Table::num(seq.rep.batches), util::Table::num(bat.rep.batches),
           util::Table::num(seq.cycles_per_query, 1),
           util::Table::num(bat.cycles_per_query, 1),
           util::Table::num(speedup, 2)});
    rows_json.push_back(json_run_row(pt, kSequential, seq));
    rows_json.push_back(json_run_row(pt, kBatched, bat));
  }
  std::cout << t;

  const unsigned hw = std::thread::hardware_concurrency();
  const bool enforced = hw >= kMinHardware;
  const bool passed = headline_speedup >= kRequiredSpeedup;

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "cannot open " << json_path << " for writing\n";
    std::abort();
  }
  out << "{\n  \"benchmark\": \"serve\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < rows_json.size(); ++i) {
    out << rows_json[i] << (i + 1 < rows_json.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"gates\": [\n"
      << "    {\"name\": \"batched_vs_sequential\", \"p\": 4096, \"k\": 64, "
         "\"n\": 16384, \"required_speedup\": "
      << kRequiredSpeedup
      << ", \"measured\": " << util::json_double(headline_speedup)
      << ", \"hardware_threads\": " << hw
      << ", \"enforced\": " << (enforced ? "true" : "false")
      << ", \"passed\": " << (passed ? "true" : "false") << "}\n"
      << "  ]\n}\n";
  std::cout << "\nwrote " << json_path << "\n";

  std::cout << "serve p=4096 k=64 batched-vs-sequential cycles/query "
               "speedup: "
            << headline_speedup << "x (gate >= " << kRequiredSpeedup << ")"
            << (enforced ? "" : " [NOT ENFORCED: < 4 hardware threads]")
            << "\n";
  if (enforced && !passed) {
    std::cerr << "BENCH FAILURE: expected >= " << kRequiredSpeedup
              << "x cycles/query from batching at p=4096 k=64, measured "
              << headline_speedup << "x\n";
    return 1;
  }
  return 0;
}
