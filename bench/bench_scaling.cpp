// E13 — simulator scaling: wall-clock throughput of the cycle-accurate
// simulation itself at the largest configurations the other experiments
// build on, plus the cycle-count invariances at scale. Not a paper claim —
// an engineering artifact documenting what the instrument can measure.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.hpp"

namespace {

using namespace mcb;

// E13/E13b run their tuple-list grids through the sweep harness
// (Sweep::explicit_points — these grids are not cartesian products). One
// seed per point, so trial order == point order; per-trial sim_wall_ns
// telemetry feeds the throughput columns, and every trial self-verifies
// (descending permutation / true median) inside the harness. The pool also
// overlaps the points, which is most of this binary's wall-clock at the
// largest configurations.
void scaling_table() {
  bench::section("E13: simulator throughput (columnsort-even, via sweep "
                 "harness)");
  harness::Sweep sweep;
  for (auto [p, k, n] : std::vector<std::array<std::size_t, 3>>{
           {16, 4, 16384},
           {64, 8, 131072},
           {128, 16, 262144},
           {256, 16, 524288},
       }) {
    sweep.explicit_points.push_back(
        {.p = p, .k = k, .n = n, .shape = util::Shape::kEven,
         .algorithm = "columnsort"});
  }
  sweep.seeds = 1;
  auto run = harness::run_sweep(sweep);
  bench::check_sweep_ok(run);

  util::Table t;
  t.header({"p", "k", "n", "cycles", "messages", "wall ms",
            "sim cycles/s", "msgs/s"});
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    const auto& pt = run.specs[i].point;
    const auto& r = run.results[i];
    const double ms = double(r.sim_wall_ns) / 1e6;
    t.row({util::Table::num(pt.p), util::Table::num(pt.k),
           util::Table::num(pt.n), util::Table::num(r.cycles),
           util::Table::num(r.messages), util::Table::num(ms, 1),
           util::Table::num(double(r.cycles) / ms * 1000.0, 0),
           util::Table::num(double(r.messages) / ms * 1000.0, 0)});
  }
  std::cout << t;
  std::cout << run.results.size() << " trials on " << run.threads_used
            << " threads in " << double(run.wall_ns) / 1e6 << " ms\n";
}

void selection_scaling_table() {
  bench::section("E13b: selection at scale (p=256, k=16, via sweep harness)");
  harness::Sweep sweep;
  for (std::size_t n : {65536u, 262144u, 1048576u}) {
    sweep.explicit_points.push_back(
        {.p = 256, .k = 16, .n = n, .shape = util::Shape::kEven,
         .algorithm = "select"});
  }
  sweep.seeds = 1;
  auto run = harness::run_sweep(sweep);
  bench::check_sweep_ok(run);

  util::Table t;
  t.header({"n", "cycles", "messages", "wall ms"});
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    const auto& r = run.results[i];
    t.row({util::Table::num(run.specs[i].point.n), util::Table::num(r.cycles),
           util::Table::num(r.messages),
           util::Table::num(double(r.sim_wall_ns) / 1e6, 1)});
  }
  std::cout << t;
}

void partial_sums_scaling_table() {
  bench::section("E13c: Partial-Sums at scale (k=64)");
  util::Table t;
  t.header({"p", "cycles", "messages", "wall ms"});
  for (std::size_t p : {256u, 1024u, 4096u}) {
    Network net({.p = p, .k = 64});
    auto prog = [](Proc& self) -> ProcMain {
      auto res = co_await algo::partial_sums(
          self, static_cast<Word>(self.id()), algo::SumOp::add(),
          {.with_total = true});
      benchmark::DoNotOptimize(res.total);
    };
    for (ProcId i = 0; i < p; ++i) net.install(i, prog(net.proc(i)));
    const auto t0 = std::chrono::steady_clock::now();
    auto stats = net.run();
    const auto dt = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    t.row({util::Table::num(p), util::Table::num(stats.cycles),
           util::Table::num(stats.messages), util::Table::num(dt, 1)});
  }
  std::cout << t;
}

void BM_SimulatorCycleOverhead(benchmark::State& state) {
  // Raw per-cycle simulation cost: p idle processors stepping.
  const auto p = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Network net({.p = p, .k = 1});
    auto prog = [](Proc& self) -> ProcMain {
      for (int t = 0; t < 1000; ++t) {
        co_await self.step();
      }
    };
    for (ProcId i = 0; i < p; ++i) net.install(i, prog(net.proc(i)));
    auto stats = net.run();
    benchmark::DoNotOptimize(stats.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000 * static_cast<std::int64_t>(p));
}
BENCHMARK(BM_SimulatorCycleOverhead)->Arg(16)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  scaling_table();
  selection_scaling_table();
  partial_sums_scaling_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
