// Shared helpers for the experiment harnesses. Each bench binary prints
// measured-vs-predicted tables for one experiment of DESIGN.md §4, then
// runs its google-benchmark timings (simulator wall-clock throughput).
#pragma once

#include <iostream>
#include <string>

#include "mcb/mcb.hpp"
#include "util/table.hpp"

namespace mcb::bench {

inline void section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

inline util::Table::Cell ratio(double measured, double predicted) {
  return util::Table::num(predicted == 0 ? 0.0 : measured / predicted, 2);
}

/// Sorted-output spot check: aborts the bench on wrong results so a broken
/// schedule can never masquerade as a fast one.
inline void check_sorted(const std::vector<std::vector<Word>>& outputs) {
  Word prev = outputs.empty() || outputs[0].empty()
                  ? 0
                  : outputs[0][0];
  for (const auto& out : outputs) {
    for (Word w : out) {
      if (w > prev) {
        std::cerr << "BENCH FAILURE: output not sorted\n";
        std::abort();
      }
      prev = w;
    }
  }
}

}  // namespace mcb::bench
