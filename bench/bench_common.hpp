// Shared helpers for the experiment harnesses. Each bench binary prints
// measured-vs-predicted tables for one experiment of DESIGN.md §4, then
// runs its google-benchmark timings (simulator wall-clock throughput).
#pragma once

#include <iostream>
#include <optional>
#include <string>

#include "harness/sweep.hpp"
#include "mcb/mcb.hpp"
#include "util/table.hpp"
#include "util/workload.hpp"

namespace mcb::bench {

inline void section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

inline util::Table::Cell ratio(double measured, double predicted) {
  return util::Table::num(predicted == 0 ? 0.0 : measured / predicted, 2);
}

/// True when the per-processor outputs concatenate to one globally sorted
/// sequence. The library's sort contract is descending (algo/sort.hpp), but
/// both orders are accepted explicitly so the guard keeps working if a
/// future algorithm emits ascending output. Empty lists (anywhere, including
/// the first processor) are handled: comparison starts at the first element
/// actually present, never at a sentinel.
inline bool is_sorted_output(const std::vector<std::vector<Word>>& outputs) {
  std::optional<Word> prev;
  bool nonincreasing = true;
  bool nondecreasing = true;
  for (const auto& out : outputs) {
    for (Word w : out) {
      if (prev) {
        if (w > *prev) nonincreasing = false;
        if (w < *prev) nondecreasing = false;
      }
      prev = w;
    }
  }
  return nonincreasing || nondecreasing;
}

/// True when `outputs` holds exactly the same multiset of values as
/// `inputs` (order-insensitive content fingerprint — count, sum and hashed
/// mixes). Ordering alone is not enough for a bench guard: a sort that
/// drops or duplicates elements can still emit a perfectly ordered
/// sequence.
inline bool is_permutation_output(
    const std::vector<std::vector<Word>>& outputs,
    const std::vector<std::vector<Word>>& inputs) {
  return util::multiset_fingerprint(outputs) ==
         util::multiset_fingerprint(inputs);
}

/// Sorted-output spot check: aborts the bench on wrong results so a broken
/// schedule can never masquerade as a fast one.
inline void check_sorted(const std::vector<std::vector<Word>>& outputs) {
  if (!is_sorted_output(outputs)) {
    std::cerr << "BENCH FAILURE: output not sorted\n";
    std::abort();
  }
}

/// Full bench guard: output must be sorted AND a permutation of the input
/// workload. Use this overload whenever the input is at hand.
inline void check_sorted(const std::vector<std::vector<Word>>& outputs,
                         const std::vector<std::vector<Word>>& inputs) {
  check_sorted(outputs);
  if (!is_permutation_output(outputs, inputs)) {
    std::cerr << "BENCH FAILURE: output is not a permutation of the input\n";
    std::abort();
  }
}

/// Aborts the bench if any trial of a harness sweep failed its built-in
/// verification (every trial self-checks: sorts must emit a descending
/// permutation, selections the true median).
inline void check_sweep_ok(const harness::SweepRun& run) {
  bool ok = true;
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    if (!run.results[i].ok()) {
      std::cerr << "BENCH FAILURE: trial " << i << ": "
                << run.results[i].error << "\n";
      ok = false;
    }
  }
  if (!ok) std::abort();
}

}  // namespace mcb::bench
