// E12 — design-choice ablation: why the paper replaced Leighton's
// untranspose with un-diagonalize.
//
// Un-diagonalize only needs m >= k(k-1); untranspose needs m >= 2(k-1)^2 —
// nearly twice the column length per channel. For a fixed input that
// difference decides how many channels the sort can actually use, and with
// it the cycle count. The table quantifies the gap across n.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace mcb;

void feasibility_table() {
  bench::section("E12a: feasible columns per variant (p=64, k=16)");
  util::Table t;
  t.header({"n", "kk undiagonalize", "kk untranspose", "dim bound undiag",
            "dim bound untrans"});
  for (std::size_t n : {512u, 1024u, 4096u, 16384u, 65536u}) {
    t.row({util::Table::num(n),
           util::Table::num(algo::choose_columns(
               n, 64, 16, seq::ColumnsortVariant::kUndiagonalize)),
           util::Table::num(algo::choose_columns(
               n, 64, 16, seq::ColumnsortVariant::kUntranspose)),
           util::Table::txt("m >= k(k-1)"),
           util::Table::txt("m >= 2(k-1)^2")});
  }
  std::cout << t;
}

void cycles_table() {
  bench::section("E12b: cycles per variant at p=64, k=16");
  util::Table t;
  t.header({"n", "undiag kk", "undiag cycles", "untrans kk",
            "untrans cycles", "untrans/undiag"});
  for (std::size_t ni : {16u, 64u, 256u, 1024u}) {
    const std::size_t n = 64 * ni;
    auto w = util::make_workload(n, 64, util::Shape::kEven, 1);
    auto ud = algo::columnsort_even(
        {.p = 64, .k = 16}, w.inputs,
        {.variant = seq::ColumnsortVariant::kUndiagonalize});
    auto ut = algo::columnsort_even(
        {.p = 64, .k = 16}, w.inputs,
        {.variant = seq::ColumnsortVariant::kUntranspose});
    bench::check_sorted(ud.run.outputs);
    bench::check_sorted(ut.run.outputs);
    t.row({util::Table::num(n), util::Table::num(ud.columns),
           util::Table::num(ud.run.stats.cycles),
           util::Table::num(ut.columns),
           util::Table::num(ut.run.stats.cycles),
           bench::ratio(double(ut.run.stats.cycles),
                        double(ud.run.stats.cycles))});
  }
  std::cout << t << "\nwherever the weaker dimension rule unlocks more "
                    "columns, the paper's variant wins proportionally.\n";
}

void BM_Variant(benchmark::State& state) {
  auto w = util::make_workload(4096, 64, util::Shape::kEven, 1);
  const auto variant = state.range(0) == 0
                           ? seq::ColumnsortVariant::kUndiagonalize
                           : seq::ColumnsortVariant::kUntranspose;
  for (auto _ : state) {
    auto res = algo::columnsort_even({.p = 64, .k = 16}, w.inputs,
                                     {.variant = variant});
    benchmark::DoNotOptimize(res.run.stats.cycles);
  }
}
BENCHMARK(BM_Variant)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  feasibility_table();
  cycles_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
