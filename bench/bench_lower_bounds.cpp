// E9 — Theorems 1-5: lower bounds vs measured costs.
//
// For sorting: run the real algorithms on the Theorem 3 / Theorem 5 hard
// instances and report measured/lower-bound ratios (all must be >= 1 and
// O(1), demonstrating Theta-tightness). For selection: the adversary game
// of Theorem 1 played against the optimal exposure strategy, and the real
// algorithm's message count against the Omega formula.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "theory/adversary.hpp"
#include "theory/bounds.hpp"

namespace {

using namespace mcb;

void sorting_bounds() {
  bench::section("E9a: sorting on the Theorem 3 hard instance (p=32, k=8)");
  util::Table t;
  t.header({"n", "lower bound msg", "measured msg", "ratio", "lower cyc",
            "measured cyc", "ratio"});
  for (std::size_t n : {4096u, 16384u, 65536u}) {
    std::vector<std::size_t> sizes(32, n / 32);
    auto inputs = theory::hard_sort_instance(sizes);
    auto res = algo::sort({.p = 32, .k = 8}, inputs);
    bench::check_sorted(res.run.outputs);
    const double lb_msg = theory::sorting_messages_lower(sizes);
    const double lb_cyc = theory::sorting_cycles_lower(sizes, 8);
    t.row({util::Table::num(n), util::Table::num(lb_msg, 0),
           util::Table::num(res.run.stats.messages),
           bench::ratio(double(res.run.stats.messages), lb_msg),
           util::Table::num(lb_cyc, 0),
           util::Table::num(res.run.stats.cycles),
           bench::ratio(double(res.run.stats.cycles), lb_cyc)});
  }
  std::cout << t;
}

void pmax_bound() {
  bench::section("E9b: Theorem 5 instance — P_max serializes (p=16, k=8)");
  util::Table t;
  t.header({"n_max", "lower cyc (n_max)", "measured cyc", "ratio"});
  for (std::size_t half : {512u, 2048u, 8192u}) {
    auto inputs = theory::hard_sort_instance_pmax(half, 16);
    auto res = algo::sort({.p = 16, .k = 8}, inputs);
    bench::check_sorted(res.run.outputs);
    t.row({util::Table::num(half), util::Table::num(half),
           util::Table::num(res.run.stats.cycles),
           bench::ratio(double(res.run.stats.cycles), double(half))});
  }
  std::cout << t << "\neven with 8 channels, cycles scale with n_max — the "
                    "Theorem 5 wall.\n";
}

void adversary_game() {
  bench::section("E9c: Theorem 1 adversary game (optimal exposures)");
  util::Table t;
  t.header({"p", "n_i", "Omega bound", "game messages", "ratio"});
  for (auto [p, ni] : std::vector<std::pair<std::size_t, std::size_t>>{
           {8, 64}, {16, 256}, {32, 1024}, {64, 4096}}) {
    std::vector<std::size_t> sizes(p, ni);
    theory::SelectionAdversary adv(sizes);
    const double bound = theory::selection_messages_lower(sizes);
    std::size_t guard = 0;
    while (adv.total_candidates() > 2 && ++guard < 1000000) {
      for (std::size_t proc = 0; proc < p; ++proc) {
        if (adv.total_candidates() <= 2) break;
        const std::size_t c = adv.candidates(proc);
        if (c > 0) adv.expose(proc, (c + 1) / 2);
      }
    }
    t.row({util::Table::num(p), util::Table::num(ni),
           util::Table::num(bound, 0), util::Table::num(adv.messages()),
           bench::ratio(double(adv.messages()), bound)});
  }
  std::cout << t;
}

void selection_vs_bound() {
  bench::section("E9d: real selection vs the Omega message bound (k=4)");
  util::Table t;
  t.header({"p", "n", "Omega bound", "measured msg", "ratio"});
  for (auto [p, n] : std::vector<std::pair<std::size_t, std::size_t>>{
           {8, 4096}, {16, 16384}, {32, 65536}, {64, 65536}}) {
    std::vector<std::size_t> sizes(p, n / p);
    auto w = util::make_workload(n, p, util::Shape::kEven, 9);
    auto res = algo::select_median({.p = p, .k = 4}, w.inputs);
    const double bound = theory::selection_messages_lower(sizes);
    t.row({util::Table::num(p), util::Table::num(n),
           util::Table::num(bound, 0), util::Table::num(res.stats.messages),
           bench::ratio(double(res.stats.messages), bound)});
  }
  std::cout << t << "\nratios stay bounded: the upper bound meets the lower "
                    "bound up to constants (Theta-tight).\n";
}

void BM_AdversaryGame(benchmark::State& state) {
  std::vector<std::size_t> sizes(64, 4096);
  for (auto _ : state) {
    theory::SelectionAdversary adv(sizes);
    while (adv.total_candidates() > 2) {
      for (std::size_t proc = 0; proc < 64; ++proc) {
        if (adv.total_candidates() <= 2) break;
        const std::size_t c = adv.candidates(proc);
        if (c > 0) adv.expose(proc, (c + 1) / 2);
      }
    }
    benchmark::DoNotOptimize(adv.messages());
  }
}
BENCHMARK(BM_AdversaryGame);

}  // namespace

int main(int argc, char** argv) {
  sorting_bounds();
  pmax_bound();
  adversary_game();
  selection_vs_bound();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
