// E4 — Section 6.2 / Corollary 5: recursive Columnsort in the small-n
// regime.
//
// When n < k^2(k-1) the flat algorithm is channel-starved (it can only use
// kk ~ n^{1/3} columns); the recursive algorithm keeps all k channels busy
// through segmented transformations. Tables: flat-vs-recursive cycles as n
// shrinks relative to k (the crossover), and the max_split ablation (the
// paper's "choice of s").
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace mcb;

void crossover_table() {
  bench::section("E4a: flat vs recursive at p = k = 64 (small-n regime)");
  util::Table t;
  t.header({"n", "flat kk", "flat cycles", "rec depth", "rec cycles",
            "rec/flat", "n/k"});
  const std::size_t p = 64, k = 64;
  for (std::size_t ni : {4u, 16u, 64u, 256u, 1024u}) {
    const std::size_t n = p * ni;
    auto w = util::make_workload(n, p, util::Shape::kEven, 1);
    auto flat = algo::columnsort_even({.p = p, .k = k}, w.inputs);
    auto rec = algo::recursive_columnsort({.p = p, .k = k}, w.inputs);
    bench::check_sorted(flat.run.outputs);
    bench::check_sorted(rec.run.outputs);
    t.row({util::Table::num(n), util::Table::num(flat.columns),
           util::Table::num(flat.run.stats.cycles),
           util::Table::num(rec.depth),
           util::Table::num(rec.run.stats.cycles),
           bench::ratio(double(rec.run.stats.cycles),
                        double(flat.run.stats.cycles)),
           util::Table::num(n / k)});
  }
  std::cout << t << "\nrec/flat < 1 marks where recursion wins (flat "
                    "channel-starved); > 1 where flat dimensions are "
                    "already comfortable.\n";
}

void ablation_table() {
  bench::section("E4b: max_split ablation (deeper recursion) at p=k=64, "
                 "n=16384");
  util::Table t;
  t.header({"max split", "top k'", "depth", "cycles", "messages",
            "cyc/(n/k)"});
  const std::size_t p = 64, k = 64, n = 16384;
  auto w = util::make_workload(n, p, util::Shape::kEven, 2);
  for (std::size_t cap : {2u, 4u, 8u, 16u, 32u, 64u}) {
    auto res = algo::recursive_columnsort({.p = p, .k = k}, w.inputs,
                                          {.max_split = cap});
    bench::check_sorted(res.run.outputs);
    t.row({util::Table::num(cap), util::Table::num(res.top_columns),
           util::Table::num(res.depth), util::Table::num(res.run.stats.cycles),
           util::Table::num(res.run.stats.messages),
           bench::ratio(double(res.run.stats.cycles),
                        double(n) / double(k))});
  }
  std::cout << t << "\nsmaller splits -> more levels -> the 4^s sorting "
                    "slots dominate; the greedy largest split minimizes "
                    "cycles.\n";
}

void scaling_table() {
  bench::section("E4c: recursive cycles track n/k as n grows (p = k = 64)");
  util::Table t;
  t.header({"n", "depth", "cycles", "n/k", "cyc/(4^depth * n/k)"});
  const std::size_t p = 64, k = 64;
  for (std::size_t ni : {16u, 64u, 256u, 1024u}) {
    const std::size_t n = p * ni;
    auto w = util::make_workload(n, p, util::Shape::kEven, 3);
    auto res = algo::recursive_columnsort({.p = p, .k = k}, w.inputs);
    bench::check_sorted(res.run.outputs);
    double slots = 1;
    for (std::size_t d = 0; d < res.depth; ++d) slots *= 4;
    t.row({util::Table::num(n), util::Table::num(res.depth),
           util::Table::num(res.run.stats.cycles), util::Table::num(n / k),
           bench::ratio(double(res.run.stats.cycles),
                        slots * double(n) / double(k))});
  }
  std::cout << t;
}

void BM_RecursiveColumnsort(benchmark::State& state) {
  auto w = util::make_workload(4096, 64, util::Shape::kEven, 1);
  for (auto _ : state) {
    auto res = algo::recursive_columnsort({.p = 64, .k = 64}, w.inputs);
    benchmark::DoNotOptimize(res.run.stats.cycles);
  }
}
BENCHMARK(BM_RecursiveColumnsort)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  crossover_table();
  ablation_table();
  scaling_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
