// E7 — Section 8 / Corollary 7: selection.
//
// Messages must track p*log2(kn/p) and cycles (p/k)*log2(kn/p); the number
// of filtering phases tracks log(kn/p) via the >= 1/4 purge guarantee.
// Sweeps n, p and the rank d.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "theory/bounds.hpp"

namespace {

using namespace mcb;

void sweep_n() {
  bench::section("E7a: sweep n at p=32, k=4 (median)");
  util::Table t;
  t.header({"n", "phases", "cycles", "(p/k)log(kn/p)", "cyc ratio",
            "messages", "p*log(kn/p)", "msg ratio"});
  const std::size_t p = 32, k = 4;
  for (std::size_t n : {1024u, 4096u, 16384u, 65536u, 262144u}) {
    auto w = util::make_workload(n, p, util::Shape::kEven, 1);
    auto res = algo::select_median({.p = p, .k = k}, w.inputs);
    const double mc = theory::selection_cycles_term(p, k, n);
    const double mm = theory::selection_messages_term(p, k, n);
    t.row({util::Table::num(n), util::Table::num(res.filter_phases),
           util::Table::num(res.stats.cycles), util::Table::num(mc, 0),
           bench::ratio(double(res.stats.cycles), mc),
           util::Table::num(res.stats.messages), util::Table::num(mm, 0),
           bench::ratio(double(res.stats.messages), mm)});
  }
  std::cout << t;
}

void sweep_p() {
  bench::section("E7b: sweep p at k=4, n=65536 (median)");
  util::Table t;
  t.header({"p", "phases", "cycles", "(p/k)log(kn/p)", "cyc ratio",
            "messages", "p*log(kn/p)", "msg ratio"});
  const std::size_t k = 4, n = 65536;
  for (std::size_t p : {8u, 16u, 32u, 64u, 128u, 256u}) {
    auto w = util::make_workload(n, p, util::Shape::kEven, 2);
    auto res = algo::select_median({.p = p, .k = k}, w.inputs);
    const double mc = theory::selection_cycles_term(p, k, n);
    const double mm = theory::selection_messages_term(p, k, n);
    t.row({util::Table::num(p), util::Table::num(res.filter_phases),
           util::Table::num(res.stats.cycles), util::Table::num(mc, 0),
           bench::ratio(double(res.stats.cycles), mc),
           util::Table::num(res.stats.messages), util::Table::num(mm, 0),
           bench::ratio(double(res.stats.messages), mm)});
  }
  std::cout << t;
}

void sweep_rank() {
  bench::section("E7c: sweep rank d at p=32, k=4, n=65536");
  util::Table t;
  t.header({"d", "value rank", "phases", "cycles", "messages"});
  const std::size_t p = 32, k = 4, n = 65536;
  auto w = util::make_workload(n, p, util::Shape::kEven, 3);
  for (std::size_t d : {std::size_t{1}, n / 100, n / 10, n / 4, n / 2,
                        3 * n / 4, n}) {
    auto res = algo::select_rank({.p = p, .k = k}, w.inputs, d);
    t.row({util::Table::num(d),
           util::Table::txt(d == 1 ? "max" : (d == n ? "min" : "interior")),
           util::Table::num(res.filter_phases),
           util::Table::num(res.stats.cycles),
           util::Table::num(res.stats.messages)});
  }
  std::cout << t;
}

void sweep_skew() {
  bench::section("E7d: selection under skewed distributions, p=32, k=4, "
                 "n=32768");
  util::Table t;
  t.header({"distribution", "n_max", "phases", "cycles", "messages"});
  for (auto shape : {util::Shape::kEven, util::Shape::kZipf,
                     util::Shape::kOneHot}) {
    auto w = util::make_workload(32768, 32, shape, 5);
    auto res = algo::select_median({.p = 32, .k = 4}, w.inputs);
    t.row({util::Table::txt(util::to_string(shape)),
           util::Table::num(w.max_local()),
           util::Table::num(res.filter_phases),
           util::Table::num(res.stats.cycles),
           util::Table::num(res.stats.messages)});
  }
  std::cout << t;
}

void BM_SelectMedian(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto w = util::make_workload(n, 32, util::Shape::kEven, 1);
  for (auto _ : state) {
    auto res = algo::select_median({.p = 32, .k = 4}, w.inputs);
    benchmark::DoNotOptimize(res.value);
  }
}
BENCHMARK(BM_SelectMedian)->Arg(4096)->Arg(65536)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sweep_n();
  sweep_p();
  sweep_rank();
  sweep_skew();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
