// E7 — Section 8 / Corollary 7: selection.
//
// Messages must track p*log2(kn/p) and cycles (p/k)*log2(kn/p); the number
// of filtering phases tracks log(kn/p) via the >= 1/4 purge guarantee.
// Sweeps n, p and the rank d.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "theory/bounds.hpp"

namespace {

using namespace mcb;

// E7a/E7b run through the parallel sweep harness: each point is repeated
// over 3 seeds, every trial self-verifies its answer against the true
// median, and the tables report cross-seed means with min..max spans next
// to the Theta-term ratios. The harness computes the same
// selection_cycles_term / selection_messages_term predictions internally.
void print_selection_aggregates(const harness::SweepRun& run,
                                const char* axis,
                                std::size_t harness::GridPoint::* field) {
  util::Table t;
  t.header({axis, "cyc mean", "cyc span", "cyc/pred", "msg mean", "msg span",
            "msg/pred"});
  for (const auto& agg : run.aggregates) {
    t.row({util::Table::num(agg.point.*field),
           util::Table::num(agg.cycles.mean, 1),
           util::Table::txt(std::to_string(std::size_t(agg.cycles.min)) +
                            ".." + std::to_string(std::size_t(agg.cycles.max))),
           util::Table::num(agg.cycles_vs_predicted, 2),
           util::Table::num(agg.messages.mean, 1),
           util::Table::txt(std::to_string(std::size_t(agg.messages.min)) +
                            ".." +
                            std::to_string(std::size_t(agg.messages.max))),
           util::Table::num(agg.messages_vs_predicted, 2)});
  }
  std::cout << t;
  std::cout << run.results.size() << " trials on " << run.threads_used
            << " threads in " << double(run.wall_ns) / 1e6 << " ms\n";
}

void sweep_n() {
  bench::section(
      "E7a: sweep n at p=32, k=4 (median), 3 seeds via sweep harness");
  harness::Sweep sweep;
  sweep.ps = {32};
  sweep.ks = {4};
  sweep.ns = {1024, 4096, 16384, 65536, 262144};
  sweep.shapes = {util::Shape::kEven};
  sweep.algorithms = {"select"};
  sweep.seeds = 3;
  auto run = harness::run_sweep(sweep);
  bench::check_sweep_ok(run);
  print_selection_aggregates(run, "n", &harness::GridPoint::n);
}

void sweep_p() {
  bench::section(
      "E7b: sweep p at k=4, n=65536 (median), 3 seeds via sweep harness");
  harness::Sweep sweep;
  sweep.ps = {8, 16, 32, 64, 128, 256};
  sweep.ks = {4};
  sweep.ns = {65536};
  sweep.shapes = {util::Shape::kEven};
  sweep.algorithms = {"select"};
  sweep.seeds = 3;
  auto run = harness::run_sweep(sweep);
  bench::check_sweep_ok(run);
  print_selection_aggregates(run, "p", &harness::GridPoint::p);
}

void sweep_rank() {
  bench::section("E7c: sweep rank d at p=32, k=4, n=65536");
  util::Table t;
  t.header({"d", "value rank", "phases", "cycles", "messages"});
  const std::size_t p = 32, k = 4, n = 65536;
  auto w = util::make_workload(n, p, util::Shape::kEven, 3);
  for (std::size_t d : {std::size_t{1}, n / 100, n / 10, n / 4, n / 2,
                        3 * n / 4, n}) {
    auto res = algo::select_rank({.p = p, .k = k}, w.inputs, d);
    t.row({util::Table::num(d),
           util::Table::txt(d == 1 ? "max" : (d == n ? "min" : "interior")),
           util::Table::num(res.filter_phases),
           util::Table::num(res.stats.cycles),
           util::Table::num(res.stats.messages)});
  }
  std::cout << t;
}

void sweep_skew() {
  bench::section("E7d: selection under skewed distributions, p=32, k=4, "
                 "n=32768");
  util::Table t;
  t.header({"distribution", "n_max", "phases", "cycles", "messages"});
  for (auto shape : {util::Shape::kEven, util::Shape::kZipf,
                     util::Shape::kOneHot}) {
    auto w = util::make_workload(32768, 32, shape, 5);
    auto res = algo::select_median({.p = 32, .k = 4}, w.inputs);
    t.row({util::Table::txt(util::to_string(shape)),
           util::Table::num(w.max_local()),
           util::Table::num(res.filter_phases),
           util::Table::num(res.stats.cycles),
           util::Table::num(res.stats.messages)});
  }
  std::cout << t;
}

void BM_SelectMedian(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto w = util::make_workload(n, 32, util::Shape::kEven, 1);
  for (auto _ : state) {
    auto res = algo::select_median({.p = 32, .k = 4}, w.inputs);
    benchmark::DoNotOptimize(res.value);
  }
}
BENCHMARK(BM_SelectMedian)->Arg(4096)->Arg(65536)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sweep_n();
  sweep_p();
  sweep_rank();
  sweep_skew();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
