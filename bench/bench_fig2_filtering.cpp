// E8 — Figure 2: anatomy of the filtering phase.
//
// Prints the candidate population entering every filtering phase of one
// selection run — the quantity Figure 2 illustrates — and checks the >= 1/4
// purge guarantee per phase, plus the geometric-decay fit across runs.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace mcb;

void phase_trace() {
  bench::section("E8a: candidates entering each filtering phase "
                 "(n=65536, p=32, k=4, median)");
  auto w = util::make_workload(65536, 32, util::Shape::kEven, 11);
  auto res = algo::select_median({.p = 32, .k = 4}, w.inputs);
  util::Table t;
  t.header({"phase", "candidates", "kept vs previous", "<= 3/4 ?"});
  for (std::size_t ph = 0; ph < res.candidates_per_phase.size(); ++ph) {
    const auto c = res.candidates_per_phase[ph];
    if (ph == 0) {
      t.row({util::Table::num(ph + 1), util::Table::num(c),
             util::Table::txt("-"), util::Table::txt("-")});
    } else {
      const double kept = double(c) / double(res.candidates_per_phase[ph - 1]);
      t.row({util::Table::num(ph + 1), util::Table::num(c),
             util::Table::num(kept, 3),
             util::Table::txt(kept <= 0.76 ? "yes" : "NO")});
    }
  }
  std::cout << t << "\n(the paper's guarantee: at least ~1/4 of the "
                    "candidates are purged per phase)\n";
}

void decay_fit() {
  bench::section("E8b: phase count vs log(kn/p) across sizes (p=32, k=4)");
  util::Table t;
  t.header({"n", "phases", "log2(kn/p)", "phases/log", "worst kept"});
  for (std::size_t n : {2048u, 8192u, 32768u, 131072u}) {
    auto w = util::make_workload(n, 32, util::Shape::kEven, n);
    auto res = algo::select_median({.p = 32, .k = 4}, w.inputs);
    double worst = 0;
    for (std::size_t ph = 1; ph < res.candidates_per_phase.size(); ++ph) {
      worst = std::max(worst, double(res.candidates_per_phase[ph]) /
                                  double(res.candidates_per_phase[ph - 1]));
    }
    const double logterm = std::log2(4.0 * double(n) / 32.0);
    t.row({util::Table::num(n), util::Table::num(res.filter_phases),
           util::Table::num(logterm, 1),
           bench::ratio(double(res.filter_phases), logterm),
           util::Table::num(worst, 3)});
  }
  std::cout << t;
}

void BM_FilterPhase(benchmark::State& state) {
  auto w = util::make_workload(32768, 32, util::Shape::kEven, 1);
  for (auto _ : state) {
    auto res = algo::select_median({.p = 32, .k = 4}, w.inputs);
    benchmark::DoNotOptimize(res.filter_phases);
  }
}
BENCHMARK(BM_FilterPhase)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  phase_trace();
  decay_fit();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
