// Simulator-throughput benchmark: the event-driven and parallel engines vs
// the scan-the-world reference loop, across (p, k) grids for sorting and
// selection.
//
// Unlike the other bench binaries (which measure the *model's* cycle and
// message complexity), this one measures the *simulator's* wall-clock cost —
// the quantity every future scaling experiment is bounded by. For each grid
// point every engine runs the identical workload kReps times; the row kept
// is the median rep by wall clock (single runs proved too noisy to gate on).
// The two largest selection points (p=16384 and p=65536, n=4p) skip the
// reference loop: its O(p) per-cycle scans make it minutes-slow there, and
// its correctness standing comes from the equivalence tests, not from being
// re-timed. Correctness of the comparison rests on
// tests/scheduler_equivalence_test.cpp, which pins all engines to
// bit-identical accounting; this binary additionally cross-checks that every
// rep and every engine agrees on cycles and messages.
//
// Output: a per-grid-point table (median wall ns, resumes, cycles/sec,
// arena telemetry, speedups) and a machine-readable BENCH_simspeed.json
// (path overridable as argv[1]) so future PRs can track the
// simulator-performance trajectory. Field names of earlier revisions are
// preserved; medians slot into the old single-run fields. Each run row also
// carries ns_per_proc_cycle = sim_wall_ns / (p * cycles), the
// size-normalized cost that makes rows of different geometry comparable.
//
// Four gates, each failing the binary when enforced:
//   * event_vs_reference — the event engine must beat the reference loop
//     >= 5x on the skip-heavy selection p=4096 k=4 point (since PR 1).
//   * arena_vs_pr2 — with the frame arena on, the same point's event
//     wall-clock must beat the PR-2 recorded baseline >= 1.3x and the
//     arena hit rate must exceed 0.9 in steady state. Not enforced in
//     MCB_FRAME_ARENA=OFF builds (tools/ci.sh warns on unenforced gates).
//   * parallel_vs_event — the parallel engine (threads = hardware) must
//     beat the event engine >= 2x on selection p=65536 k=4. Enforced only
//     on machines with >= 4 hardware threads; below that the pool cannot
//     possibly buy a 2x and the gate reports unenforced.
//   * parallel_hotpath_vs_pr6 — parallel ns_per_proc_cycle on the same
//     p=65536 point must beat the PR-6 recorded baseline >= 1.5x (batched
//     slot commits + barrier fusion). Same >= 4-hardware-thread
//     enforcement floor as parallel_vs_event.
//
// One extra row rides outside the gate grid: selection p=2^20 (n=4p),
// parallel engine only, a single rep — the first megaprocessor data point.
// It only runs when the p=65536 parallel median stayed within a wall-clock
// budget (small CI runners would otherwise spend tens of minutes on it);
// when skipped, the JSON says so loudly in a top-level "big_row" object
// rather than silently omitting the row. MCB_SIMSPEED_FORCE_BIG=1 forces it
// regardless of budget.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algo/selection.hpp"
#include "algo/sort.hpp"
#include "bench_common.hpp"
#include "obs/profiler.hpp"
#include "util/workload.hpp"

namespace mcb::bench {
namespace {

// --profile attaches this flight recorder to every parallel-engine run (the
// serial engines have no barriers to time). Host-side only: the gates and
// the JSON artifact are computed from the same RunStats either way.
obs::Profiler* g_profiler = nullptr;

constexpr std::size_t kReps = 3;

// Event-engine wall clock of selection p=4096 k=4 recorded in
// BENCH_simspeed.json by PR 2 (commit 59e879e), before the frame arena and
// the wake wheel. The arena gate measures against this fixed point.
constexpr std::uint64_t kPr2EventWallNs = 206128073;
constexpr double kArenaRequiredSpeedup = 1.3;
constexpr double kArenaRequiredHitRate = 0.9;

// parallel_vs_event gate: required speedup and the hardware-thread floor
// below which it stays unenforced (a <4-wide machine cannot owe us 2x).
constexpr double kParallelRequiredSpeedup = 2.0;
constexpr unsigned kParallelMinHardware = 4;

// Parallel ns_per_proc_cycle on selection p=65536 k=4 recorded in
// BENCH_simspeed.json by PR 6, before the hot-path overhaul (batched slot
// commits, sticky stripe affinity, barrier fusion). The hot-path gate
// measures against this fixed point; same hardware floor as above.
constexpr double kPr6ParallelNsPerProcCycle = 0.0698078;
constexpr double kHotPathRequiredRatio = 1.5;

// The p=2^20 row runs only when the p=65536 parallel median wall clock came
// in under this budget (the big row is ~16x that work), or when
// MCB_SIMSPEED_FORCE_BIG=1 overrides the guard.
constexpr std::uint64_t kBigRowBudgetWallNs = 2'000'000'000;  // 2 s

struct GridPoint {
  std::string bench;  // "sort" | "selection"
  std::size_t p, k, n;
  bool skip_reference = false;  // the two huge selection rows
};

struct EngineResult {
  RunStats median;                     // the median rep by sim_wall_ns
  std::vector<std::uint64_t> wall_ns;  // all reps, run order
};

struct Row {
  GridPoint pt;
  EngineResult ref;    // scan-the-world baseline; empty when skip_reference
  EngineResult event;  // wake-queue engine
  EngineResult par;    // striped parallel engine, threads = hardware
  double speedup() const {  // event vs reference; 0 when reference skipped
    return event.median.sim_wall_ns == 0
               ? 0.0
               : static_cast<double>(ref.median.sim_wall_ns) /
                     static_cast<double>(event.median.sim_wall_ns);
  }
  double parallel_speedup() const {  // parallel vs event
    return par.median.sim_wall_ns == 0
               ? 0.0
               : static_cast<double>(event.median.sim_wall_ns) /
                     static_cast<double>(par.median.sim_wall_ns);
  }
};

// The p=2^20 parallel-only row and the budget decision behind it. Always
// serialized into the JSON (as "big_row") so a skip is loud, not silent.
struct BigRow {
  GridPoint pt;
  bool ran = false;
  bool forced = false;             // MCB_SIMSPEED_FORCE_BIG=1 was set
  std::uint64_t gate_wall_ns = 0;  // p=65536 parallel median (budget key)
  EngineResult par;                // a single rep when ran
};

const char* engine_json_name(Engine e) {
  switch (e) {
    case Engine::kReference: return "reference";
    case Engine::kEventDriven: return "event";
    case Engine::kParallel: return "parallel";
  }
  return "unknown";
}

RunStats run_point(const GridPoint& pt, Engine engine) {
  SimConfig cfg{.p = pt.p, .k = pt.k};
  cfg.engine = engine;  // kParallel keeps threads = 0: all hardware threads
  if (engine == Engine::kParallel) cfg.profiler = g_profiler;
  const auto w = util::make_workload(pt.n, pt.p, util::Shape::kEven, 42);
  if (pt.bench == "sort") {
    auto res = algo::sort(cfg, w.inputs);
    check_sorted(res.run.outputs);
    return res.run.stats;
  }
  auto res = algo::select_median(cfg, w.inputs);
  return res.stats;
}

EngineResult run_reps(const GridPoint& pt, Engine engine) {
  std::vector<RunStats> reps;
  reps.reserve(kReps);
  for (std::size_t i = 0; i < kReps; ++i) {
    reps.push_back(run_point(pt, engine));
    if (reps.back().cycles != reps.front().cycles ||
        reps.back().messages != reps.front().messages) {
      std::cerr << "BENCH FAILURE: nondeterministic accounting across reps "
                   "at p="
                << pt.p << " k=" << pt.k << "\n";
      std::abort();
    }
  }
  EngineResult r;
  for (const auto& s : reps) r.wall_ns.push_back(s.sim_wall_ns);
  auto by_wall = reps;  // median by wall clock; ties keep run order
  std::sort(by_wall.begin(), by_wall.end(),
            [](const RunStats& a, const RunStats& b) {
              return a.sim_wall_ns < b.sim_wall_ns;
            });
  r.median = by_wall[by_wall.size() / 2];
  return r;
}

/// sim_wall_ns normalized by the work simulated: host nanoseconds per
/// processor-cycle. Comparable across grid points of any size.
double ns_per_proc_cycle(const GridPoint& pt, const RunStats& s) {
  const double work = static_cast<double>(pt.p) * static_cast<double>(s.cycles);
  return work == 0.0 ? 0.0 : static_cast<double>(s.sim_wall_ns) / work;
}

/// One run as rolled up at a grid point (reference vs skipped, a single
/// rep vs kReps) never makes it into the artifact shape: every run row has
/// the same fields no matter how it was produced.
std::string json_run_row(const GridPoint& pt, const EngineResult& er,
                         Engine engine) {
  const RunStats& s = er.median;
  std::ostringstream os;
  os << "    {\"bench\": \"" << pt.bench << "\", \"p\": " << pt.p
     << ", \"k\": " << pt.k << ", \"n\": " << pt.n << ", \"engine\": \""
     << engine_json_name(engine) << "\""
     << ", \"cycles\": " << s.cycles << ", \"messages\": " << s.messages
     << ", \"sim_wall_ns\": " << s.sim_wall_ns
     << ", \"ns_per_proc_cycle\": " << ns_per_proc_cycle(pt, s)
     << ", \"proc_resumes\": " << s.proc_resumes
     << ", \"cycles_per_sec\": " << s.cycles_per_sec
     << ", \"frame_allocs\": " << s.frame_allocs
     << ", \"frame_frees\": " << s.frame_frees
     << ", \"arena_bytes_peak\": " << s.arena_bytes_peak
     << ", \"arena_hit_rate\": " << s.arena_hit_rate
     << ", \"wall_ns_reps\": [";
  for (std::size_t i = 0; i < er.wall_ns.size(); ++i) {
    os << (i ? ", " : "") << er.wall_ns[i];
  }
  os << "]}";
  return os.str();
}

void write_json(const std::vector<Row>& rows, const Row& headline,
                const Row& big, const BigRow& huge, bool parallel_enforced,
                const std::string& path) {
  const bool arena_on = MCB_FRAME_ARENA_ENABLED != 0;
  const double arena_speedup =
      headline.event.median.sim_wall_ns == 0
          ? 0.0
          : static_cast<double>(kPr2EventWallNs) /
                static_cast<double>(headline.event.median.sim_wall_ns);
  const double hit_rate = headline.event.median.arena_hit_rate;
  const bool arena_passed = arena_speedup >= kArenaRequiredSpeedup &&
                            hit_rate > kArenaRequiredHitRate;
  const bool ref_passed = headline.speedup() >= 5.0;
  const bool parallel_passed =
      big.parallel_speedup() >= kParallelRequiredSpeedup;
  const double hotpath_measured = ns_per_proc_cycle(big.pt, big.par.median);
  const double hotpath_ratio =
      hotpath_measured == 0.0 ? 0.0
                              : kPr6ParallelNsPerProcCycle / hotpath_measured;
  const bool hotpath_passed = hotpath_ratio >= kHotPathRequiredRatio;

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    std::abort();
  }
  out << "{\n  \"benchmark\": \"simspeed\",\n  \"reps\": " << kReps
      << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].pt.skip_reference) {
      out << json_run_row(rows[i].pt, rows[i].ref, Engine::kReference)
          << ",\n";
    }
    out << json_run_row(rows[i].pt, rows[i].event, Engine::kEventDriven)
        << ",\n";
    out << json_run_row(rows[i].pt, rows[i].par, Engine::kParallel)
        << (i + 1 < rows.size() || huge.ran ? ",\n" : "\n");
  }
  if (huge.ran) {
    out << json_run_row(huge.pt, huge.par, Engine::kParallel) << "\n";
  }
  // The big row's disposition, run or skipped — a reader diffing artifacts
  // across machines sees *why* the p=2^20 row is absent, not just that it
  // is. (No "enforced" member here: the gates array carries the matching
  // big_row_p2_20 coverage entry that `mcbsim gates` scans.)
  out << "  ],\n  \"big_row\": {\"bench\": \"" << huge.pt.bench
      << "\", \"p\": " << huge.pt.p << ", \"k\": " << huge.pt.k
      << ", \"n\": " << huge.pt.n << ", \"engine\": \"parallel\", \"reps\": 1"
      << ", \"status\": \"" << (huge.ran ? "run" : "SKIPPED")
      << "\", \"budget_wall_ns\": " << kBigRowBudgetWallNs
      << ", \"p65536_parallel_wall_ns\": " << huge.gate_wall_ns
      << ", \"forced\": " << (huge.forced ? "true" : "false");
  if (!huge.ran) {
    out << ", \"reason\": \"p=65536 parallel median wall exceeds the budget "
           "on this machine; set MCB_SIMSPEED_FORCE_BIG=1 to run it "
           "anyway\"";
  }
  out << "},\n  \"speedups\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << "    {\"bench\": \"" << rows[i].pt.bench
        << "\", \"p\": " << rows[i].pt.p << ", \"k\": " << rows[i].pt.k
        << ", \"speedup\": " << rows[i].speedup()
        << ", \"parallel_vs_event\": " << rows[i].parallel_speedup() << "}"
        << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"gates\": [\n"
      << "    {\"name\": \"event_vs_reference\", \"bench\": \"selection\", "
         "\"p\": 4096, \"k\": 4, \"required_speedup\": 5.0, \"measured\": "
      << headline.speedup() << ", \"enforced\": true, \"passed\": "
      << (ref_passed ? "true" : "false") << "},\n"
      << "    {\"name\": \"arena_vs_pr2\", \"bench\": \"selection\", "
         "\"p\": 4096, \"k\": 4, \"baseline_event_wall_ns\": "
      << kPr2EventWallNs
      << ", \"median_event_wall_ns\": " << headline.event.median.sim_wall_ns
      << ", \"required_speedup\": " << kArenaRequiredSpeedup
      << ", \"measured\": " << arena_speedup
      << ", \"required_hit_rate\": " << kArenaRequiredHitRate
      << ", \"arena_hit_rate\": " << hit_rate
      << ", \"enforced\": " << (arena_on ? "true" : "false")
      << ", \"passed\": " << (arena_passed ? "true" : "false") << "},\n"
      << "    {\"name\": \"parallel_vs_event\", \"bench\": \"selection\", "
         "\"p\": "
      << big.pt.p << ", \"k\": " << big.pt.k
      << ", \"required_speedup\": " << kParallelRequiredSpeedup
      << ", \"measured\": " << big.parallel_speedup()
      << ", \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ", \"enforced\": " << (parallel_enforced ? "true" : "false")
      << ", \"passed\": " << (parallel_passed ? "true" : "false") << "},\n"
      << "    {\"name\": \"parallel_hotpath_vs_pr6\", \"bench\": "
         "\"selection\", \"p\": "
      << big.pt.p << ", \"k\": " << big.pt.k
      << ", \"baseline_ns_per_proc_cycle\": " << kPr6ParallelNsPerProcCycle
      << ", \"measured_ns_per_proc_cycle\": " << hotpath_measured
      << ", \"required_ratio\": " << kHotPathRequiredRatio
      << ", \"measured_ratio\": " << hotpath_ratio
      << ", \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ", \"enforced\": " << (parallel_enforced ? "true" : "false")
      << ", \"passed\": " << (hotpath_passed ? "true" : "false") << "},\n"
      // Coverage gate for the p=2^20 row: when the budget guard skipped it,
      // this stub reports enforced=false so `mcbsim gates` exits 3 and the
      // missing megaprocessor data point is surfaced, not silently absent.
      << "    {\"name\": \"big_row_p2_20\", \"bench\": \"" << huge.pt.bench
      << "\", \"p\": " << huge.pt.p << ", \"k\": " << huge.pt.k
      << ", \"budget_wall_ns\": " << kBigRowBudgetWallNs
      << ", \"p65536_parallel_wall_ns\": " << huge.gate_wall_ns
      << ", \"enforced\": " << (huge.ran ? "true" : "false")
      << ", \"passed\": " << (huge.ran ? "true" : "false") << "}\n"
      << "  ]\n}\n";
}

}  // namespace
}  // namespace mcb::bench

int main(int argc, char** argv) {
  using namespace mcb;
  using namespace mcb::bench;

  std::string json_path = "BENCH_simspeed.json";
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--profile") {
      profile = true;
    } else {
      json_path = argv[i];
    }
  }
  std::optional<obs::Profiler> prof;
  if (profile) {
    prof.emplace();
    g_profiler = &*prof;
  }

  // Sort stresses dense cycles (most processors participate every cycle);
  // selection stresses the wake queue and the idle-cycle fast-forward (at
  // p/k = 1024 nearly every processor is asleep in skip() at any instant —
  // the acceptance workload for the event engine). The two skip_reference
  // rows are the parallel engine's acceptance workloads: big enough that
  // striping the per-cycle scans pays for the barrier.
  const std::vector<GridPoint> grid = {
      {"sort", 64, 8, 256},
      {"sort", 256, 16, 1024},
      {"sort", 1024, 32, 4096},
      {"selection", 256, 4, 1024},
      {"selection", 1024, 4, 4096},
      {"selection", 4096, 4, 16384},
      {"selection", 1024, 32, 4096},
      {"selection", 16384, 4, 65536, /*skip_reference=*/true},
      {"selection", 65536, 4, 262144, /*skip_reference=*/true},
  };

  std::vector<Row> rows;
  section(
      "simulator throughput: event-driven and parallel engines vs "
      "scan-the-world reference");
  std::cout << "median of " << kReps << " reps per engine per point\n";
  util::Table t;
  t.header({"bench", "p", "k", "n", "cycles", "ref wall ms", "event wall ms",
            "par wall ms", "event resumes", "event cyc/s", "hit rate",
            "ref/event", "event/par"});
  for (const auto& pt : grid) {
    Row r;
    r.pt = pt;
    if (!pt.skip_reference) r.ref = run_reps(pt, Engine::kReference);
    r.event = run_reps(pt, Engine::kEventDriven);
    r.par = run_reps(pt, Engine::kParallel);
    const bool ref_agrees =
        pt.skip_reference ||
        (r.ref.median.cycles == r.event.median.cycles &&
         r.ref.median.messages == r.event.median.messages);
    if (!ref_agrees || r.par.median.cycles != r.event.median.cycles ||
        r.par.median.messages != r.event.median.messages) {
      std::cerr << "BENCH FAILURE: engines disagree on accounting at p="
                << pt.p << " k=" << pt.k << "\n";
      std::abort();
    }
    t.row({util::Table::txt(pt.bench), util::Table::num(pt.p),
           util::Table::num(pt.k), util::Table::num(pt.n),
           util::Table::num(r.event.median.cycles),
           pt.skip_reference
               ? util::Table::txt("-")
               : util::Table::num(
                     static_cast<double>(r.ref.median.sim_wall_ns) / 1e6, 2),
           util::Table::num(
               static_cast<double>(r.event.median.sim_wall_ns) / 1e6, 2),
           util::Table::num(
               static_cast<double>(r.par.median.sim_wall_ns) / 1e6, 2),
           util::Table::num(r.event.median.proc_resumes),
           util::Table::num(r.event.median.cycles_per_sec, 0),
           util::Table::num(r.event.median.arena_hit_rate, 3),
           pt.skip_reference ? util::Table::txt("-")
                             : util::Table::num(r.speedup(), 2),
           util::Table::num(r.parallel_speedup(), 2)});
    rows.push_back(std::move(r));
  }
  std::cout << t;

  const Row* headline = nullptr;  // event_vs_reference + arena gates
  const Row* big = nullptr;       // parallel_vs_event gate
  for (const auto& r : rows) {
    if (r.pt.bench != "selection") continue;
    if (r.pt.p == 4096) headline = &r;
    if (r.pt.p == 65536) big = &r;
  }
  if (headline == nullptr || big == nullptr) {
    std::cerr << "BENCH FAILURE: gate grid point missing\n";
    return 1;
  }

  // The p=2^20 row: parallel engine only (the serial engines would take
  // O(10 minutes) even on fast hardware), one rep, behind the wall-clock
  // budget so small CI runners are not stuck simulating a megaprocessor
  // network. The skip is recorded in the JSON, never silent.
  BigRow huge;
  huge.pt = {"selection", std::size_t{1} << 20, 4, std::size_t{4} << 20,
             /*skip_reference=*/true};
  huge.gate_wall_ns = big->par.median.sim_wall_ns;
  const char* force_env = std::getenv("MCB_SIMSPEED_FORCE_BIG");
  huge.forced =
      force_env != nullptr && *force_env != '\0' && *force_env != '0';
  if (huge.forced || huge.gate_wall_ns <= kBigRowBudgetWallNs) {
    std::cout << "\nrunning the p=2^20 selection row (parallel only, "
                 "1 rep)...\n";
    RunStats s = run_point(huge.pt, Engine::kParallel);
    huge.par.wall_ns.push_back(s.sim_wall_ns);
    huge.par.median = std::move(s);
    huge.ran = true;
    std::cout << "selection p=2^20 k=4 parallel: "
              << static_cast<double>(huge.par.median.sim_wall_ns) / 1e6
              << " ms, " << huge.par.median.cycles << " cycles, "
              << ns_per_proc_cycle(huge.pt, huge.par.median)
              << " ns/proc-cycle\n";
  } else {
    std::cout << "\nSKIPPED the p=2^20 selection row: p=65536 parallel "
                 "median wall "
              << huge.gate_wall_ns << " ns exceeds the "
              << kBigRowBudgetWallNs
              << " ns budget (set MCB_SIMSPEED_FORCE_BIG=1 to force)\n";
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const bool parallel_enforced = hw >= kParallelMinHardware;
  write_json(rows, *headline, *big, huge, parallel_enforced, json_path);
  std::cout << "\nwrote " << json_path << "\n";

  // Gate 1 (since PR 1): the skip-heavy selection workload at p=4096, k=4
  // must run at least 5x faster under the event engine than the reference.
  std::cout << "selection p=4096 k=4 event-vs-reference speedup: "
            << headline->speedup() << "x (gate >= 5)\n";
  if (headline->speedup() < 5.0) {
    std::cerr << "BENCH FAILURE: expected >= 5x speedup on selection "
                 "p=4096 k=4, measured "
              << headline->speedup() << "x\n";
    return 1;
  }

  // Gate 2 (since PR 3): the frame arena + wake wheel must beat the PR-2
  // recorded event wall clock >= 1.3x with a > 0.9 steady-state hit rate.
  const double arena_speedup =
      static_cast<double>(kPr2EventWallNs) /
      static_cast<double>(headline->event.median.sim_wall_ns);
  std::cout << "selection p=4096 k=4 vs PR-2 baseline: " << arena_speedup
            << "x (gate >= " << kArenaRequiredSpeedup
            << "), arena hit rate " << headline->event.median.arena_hit_rate
            << " (gate > " << kArenaRequiredHitRate << ")"
            << (MCB_FRAME_ARENA_ENABLED ? "" : " [NOT ENFORCED: arena off]")
            << "\n";
  if (MCB_FRAME_ARENA_ENABLED &&
      (arena_speedup < kArenaRequiredSpeedup ||
       headline->event.median.arena_hit_rate <= kArenaRequiredHitRate)) {
    std::cerr << "BENCH FAILURE: arena gate missed on selection p=4096 k=4 "
                 "(speedup "
              << arena_speedup << "x, hit rate "
              << headline->event.median.arena_hit_rate << ")\n";
    return 1;
  }

  // Gate 3 (since PR 6): the parallel engine must beat the event engine
  // >= 2x on selection p=65536 k=4 — but only on machines wide enough for
  // the pool to plausibly deliver it.
  std::cout << "selection p=65536 k=4 parallel-vs-event speedup: "
            << big->parallel_speedup() << "x (gate >= "
            << kParallelRequiredSpeedup << ")"
            << (parallel_enforced
                    ? ""
                    : " [NOT ENFORCED: < 4 hardware threads]")
            << "\n";
  if (parallel_enforced &&
      big->parallel_speedup() < kParallelRequiredSpeedup) {
    std::cerr << "BENCH FAILURE: parallel gate missed on selection p=65536 "
                 "k=4 (speedup "
              << big->parallel_speedup() << "x on " << hw
              << " hardware threads)\n";
    return 1;
  }

  // Gate 4 (since PR 8): the hot-path overhaul (batched slot commits,
  // sticky affinity, barrier fusion) must hold a >= 1.5x ns_per_proc_cycle
  // improvement over the PR-6 parallel engine on the same point. Same
  // hardware floor as gate 3.
  const double hotpath = ns_per_proc_cycle(big->pt, big->par.median);
  const double hotpath_ratio =
      hotpath == 0.0 ? 0.0 : kPr6ParallelNsPerProcCycle / hotpath;
  std::cout << "selection p=65536 k=4 parallel ns/proc-cycle: " << hotpath
            << " vs PR-6 baseline " << kPr6ParallelNsPerProcCycle << " ("
            << hotpath_ratio << "x, gate >= " << kHotPathRequiredRatio << ")"
            << (parallel_enforced ? ""
                                  : " [NOT ENFORCED: < 4 hardware threads]")
            << "\n";
  if (parallel_enforced && hotpath_ratio < kHotPathRequiredRatio) {
    std::cerr << "BENCH FAILURE: hot-path gate missed on selection p=65536 "
                 "k=4 (ns_per_proc_cycle "
              << hotpath << ", only " << hotpath_ratio
              << "x over the PR-6 baseline)\n";
    return 1;
  }

  if (prof.has_value()) {
    section("host profile: parallel engine, all grid points and reps");
    std::cout << prof->text();
  }
  return 0;
}
