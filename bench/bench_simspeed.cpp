// Simulator-throughput benchmark: event-driven engine vs the scan-the-world
// reference loop, across (p, k) grids for sorting and selection.
//
// Unlike the other bench binaries (which measure the *model's* cycle and
// message complexity), this one measures the *simulator's* wall-clock cost —
// the quantity every future scaling experiment is bounded by. For each grid
// point both engines run the identical workload; correctness of the
// comparison rests on tests/scheduler_equivalence_test.cpp, which pins the
// two engines to bit-identical accounting.
//
// Output: a per-grid-point table (wall ns, resumes, cycles/sec, speedup) and
// a machine-readable BENCH_simspeed.json (path overridable as argv[1]) so
// future PRs can track the simulator-performance trajectory.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "algo/selection.hpp"
#include "algo/sort.hpp"
#include "bench_common.hpp"
#include "util/workload.hpp"

namespace mcb::bench {
namespace {

struct GridPoint {
  std::string bench;  // "sort" | "selection"
  std::size_t p, k, n;
};

struct Row {
  GridPoint pt;
  RunStats ref;    // scan-the-world baseline
  RunStats event;  // wake-queue engine
  double speedup() const {
    return event.sim_wall_ns == 0
               ? 0.0
               : static_cast<double>(ref.sim_wall_ns) /
                     static_cast<double>(event.sim_wall_ns);
  }
};

RunStats run_point(const GridPoint& pt, Engine engine) {
  SimConfig cfg{.p = pt.p, .k = pt.k};
  cfg.engine = engine;
  const auto w = util::make_workload(pt.n, pt.p, util::Shape::kEven, 42);
  if (pt.bench == "sort") {
    auto res = algo::sort(cfg, w.inputs);
    check_sorted(res.run.outputs);
    return res.run.stats;
  }
  auto res = algo::select_median(cfg, w.inputs);
  return res.stats;
}

std::string json_run_row(const Row& r, Engine engine) {
  const RunStats& s = engine == Engine::kReference ? r.ref : r.event;
  std::ostringstream os;
  os << "    {\"bench\": \"" << r.pt.bench << "\", \"p\": " << r.pt.p
     << ", \"k\": " << r.pt.k << ", \"n\": " << r.pt.n << ", \"engine\": \""
     << (engine == Engine::kReference ? "reference" : "event") << "\""
     << ", \"cycles\": " << s.cycles << ", \"messages\": " << s.messages
     << ", \"sim_wall_ns\": " << s.sim_wall_ns
     << ", \"proc_resumes\": " << s.proc_resumes
     << ", \"cycles_per_sec\": " << s.cycles_per_sec << "}";
  return os.str();
}

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    std::abort();
  }
  out << "{\n  \"benchmark\": \"simspeed\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << json_run_row(rows[i], Engine::kReference) << ",\n";
    out << json_run_row(rows[i], Engine::kEventDriven)
        << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"speedups\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << "    {\"bench\": \"" << rows[i].pt.bench
        << "\", \"p\": " << rows[i].pt.p << ", \"k\": " << rows[i].pt.k
        << ", \"speedup\": " << rows[i].speedup() << "}"
        << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

}  // namespace
}  // namespace mcb::bench

int main(int argc, char** argv) {
  using namespace mcb;
  using namespace mcb::bench;

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_simspeed.json";

  // Sort stresses dense cycles (most processors participate every cycle);
  // selection stresses the wake queue and the idle-cycle fast-forward (at
  // p/k = 1024 nearly every processor is asleep in skip() at any instant —
  // the acceptance workload for the event engine).
  const std::vector<GridPoint> grid = {
      {"sort", 64, 8, 256},        {"sort", 256, 16, 1024},
      {"sort", 1024, 32, 4096},    {"selection", 256, 4, 1024},
      {"selection", 1024, 4, 4096}, {"selection", 4096, 4, 16384},
      {"selection", 1024, 32, 4096},
  };

  std::vector<Row> rows;
  section("simulator throughput: event-driven vs scan-the-world reference");
  util::Table t;
  t.header({"bench", "p", "k", "n", "cycles", "ref wall ms", "event wall ms",
            "ref resumes", "event resumes", "event cyc/s", "speedup"});
  for (const auto& pt : grid) {
    Row r{pt, run_point(pt, Engine::kReference),
          run_point(pt, Engine::kEventDriven)};
    if (r.ref.cycles != r.event.cycles ||
        r.ref.messages != r.event.messages) {
      std::cerr << "BENCH FAILURE: engines disagree on accounting at p="
                << pt.p << " k=" << pt.k << "\n";
      std::abort();
    }
    t.row({util::Table::txt(pt.bench), util::Table::num(pt.p),
           util::Table::num(pt.k), util::Table::num(pt.n),
           util::Table::num(r.ref.cycles),
           util::Table::num(static_cast<double>(r.ref.sim_wall_ns) / 1e6, 2),
           util::Table::num(static_cast<double>(r.event.sim_wall_ns) / 1e6,
                            2),
           util::Table::num(r.ref.proc_resumes),
           util::Table::num(r.event.proc_resumes),
           util::Table::num(r.event.cycles_per_sec, 0),
           util::Table::num(r.speedup(), 2)});
    rows.push_back(std::move(r));
  }
  std::cout << t;

  write_json(rows, json_path);
  std::cout << "\nwrote " << json_path << "\n";

  // Guard the headline claim: the skip-heavy selection workload at p=4096,
  // k=4 must run at least 5x faster under the event engine.
  for (const auto& r : rows) {
    if (r.pt.bench == "selection" && r.pt.p == 4096) {
      if (r.speedup() < 5.0) {
        std::cerr << "BENCH FAILURE: expected >= 5x speedup on selection "
                     "p=4096 k=4, measured "
                  << r.speedup() << "x\n";
        return 1;
      }
      std::cout << "selection p=4096 k=4 speedup: " << r.speedup() << "x\n";
    }
  }
  return 0;
}
