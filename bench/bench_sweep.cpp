// Harness scaling benchmark: serial-vs-parallel wall-clock of the trial
// sweep subsystem itself (src/harness) on a fixed grid, plus the
// determinism cross-check the harness promises — per-trial accounting and
// the serialized sweep JSON must be identical regardless of thread count.
//
// Output: a human-readable summary and a machine-readable BENCH_sweep.json
// (path overridable as argv[1]) recording hardware_threads, the two
// wall-clocks, the speedup and whether accounting matched. The >= 3x
// speedup gate is only enforced on machines with >= 4 hardware threads —
// below that the pool cannot physically deliver it — but the determinism
// checks are enforced everywhere and fail the binary on any mismatch.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace mcb;

harness::Sweep fixed_grid() {
  harness::Sweep sweep;
  sweep.explicit_points = {
      {.p = 64, .k = 8, .n = 16384, .shape = util::Shape::kEven,
       .algorithm = "columnsort"},
      {.p = 128, .k = 16, .n = 32768, .shape = util::Shape::kEven,
       .algorithm = "columnsort"},
      {.p = 256, .k = 8, .n = 16384, .shape = util::Shape::kEven,
       .algorithm = "select"},
      {.p = 1024, .k = 16, .n = 16384, .shape = util::Shape::kEven,
       .algorithm = "select"},
  };
  sweep.base_seed = 7;
  sweep.seeds = 4;
  return sweep;
}

bool identical_accounting(const harness::SweepRun& a,
                          const harness::SweepRun& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const auto& ra = a.results[i];
    const auto& rb = b.results[i];
    if (ra.cycles != rb.cycles || ra.messages != rb.messages ||
        ra.peak_aux_words != rb.peak_aux_words ||
        ra.proc_resumes != rb.proc_resumes || ra.error != rb.error) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_sweep.json";

  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t parallel_threads = hw > 0 ? hw : 1;
  const auto sweep = fixed_grid();

  bench::section("harness sweep: serial vs parallel on the fixed grid");
  std::cout << sweep.trials() << " trials ("
            << sweep.explicit_points.size() << " points x " << sweep.seeds
            << " seeds), hardware_concurrency=" << hw << "\n";

  auto serial = harness::run_sweep(sweep, {.threads = 1});
  bench::check_sweep_ok(serial);
  auto parallel = harness::run_sweep(sweep, {.threads = parallel_threads});
  bench::check_sweep_ok(parallel);

  const bool accounting_ok = identical_accounting(serial, parallel);
  const bool json_ok =
      harness::sweep_json(serial) == harness::sweep_json(parallel);
  const double speedup =
      parallel.wall_ns > 0
          ? double(serial.wall_ns) / double(parallel.wall_ns)
          : 0.0;
  const bool gate_enforced = hw >= 4;
  const double required_speedup = 3.0;
  const bool gate_passed = !gate_enforced || speedup >= required_speedup;

  std::cout << "serial   (1 thread):  " << double(serial.wall_ns) / 1e6
            << " ms\n"
            << "parallel (" << parallel.threads_used
            << " threads): " << double(parallel.wall_ns) / 1e6 << " ms\n"
            << "speedup: " << speedup << "x (gate: >= " << required_speedup
            << "x, " << (gate_enforced ? "enforced" : "not enforced: < 4 hw threads")
            << ")\n"
            << "per-trial accounting identical: "
            << (accounting_ok ? "yes" : "NO") << "\n"
            << "sweep JSON byte-identical:      " << (json_ok ? "yes" : "NO")
            << "\n";

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "cannot open " << json_path << " for writing\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"sweep\",\n"
      << "  \"trials\": " << serial.results.size() << ",\n"
      << "  \"hardware_threads\": " << hw << ",\n"
      << "  \"serial_wall_ns\": " << serial.wall_ns << ",\n"
      << "  \"parallel_wall_ns\": " << parallel.wall_ns << ",\n"
      << "  \"parallel_threads\": " << parallel.threads_used << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"identical_accounting\": " << (accounting_ok ? "true" : "false")
      << ",\n"
      << "  \"identical_json\": " << (json_ok ? "true" : "false") << ",\n"
      << "  \"gate\": {\"required_speedup\": " << required_speedup
      << ", \"enforced\": " << (gate_enforced ? "true" : "false")
      << ", \"passed\": " << (gate_passed ? "true" : "false") << "}\n"
      << "}\n";
  out.close();
  std::cout << "wrote " << json_path << "\n";

  if (!accounting_ok || !json_ok) {
    std::cerr << "BENCH FAILURE: thread count changed sweep results\n";
    return 1;
  }
  if (!gate_passed) {
    std::cerr << "BENCH FAILURE: parallel speedup " << speedup << "x < "
              << required_speedup << "x on " << hw << " hardware threads\n";
    return 1;
  }
  return 0;
}
