// E5 — Section 7.1: the Partial-Sums collective.
//
// Cycles must track p/k + log k and messages must track p across both
// sweeps. Run through the public collective on a real network.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace mcb;

RunStats run_ps(std::size_t p, std::size_t k) {
  Network net({.p = p, .k = k});
  auto prog = [](Proc& self) -> ProcMain {
    auto res = co_await algo::partial_sums(
        self, static_cast<Word>(self.id() + 1), algo::SumOp::add(),
        {.with_total = true, .with_next = true});
    benchmark::DoNotOptimize(res.self);
  };
  for (ProcId i = 0; i < p; ++i) net.install(i, prog(net.proc(i)));
  return net.run();
}

void sweep_p() {
  bench::section("E5a: sweep p at k=8");
  util::Table t;
  t.header({"p", "cycles", "p/k + log2 k", "ratio", "messages", "msg/p"});
  for (std::size_t p : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    auto stats = run_ps(p, 8);
    const double pred = double(p) / 8.0 + std::log2(8.0);
    t.row({util::Table::num(p), util::Table::num(stats.cycles),
           util::Table::num(pred, 1),
           bench::ratio(double(stats.cycles), pred),
           util::Table::num(stats.messages),
           bench::ratio(double(stats.messages), double(p))});
  }
  std::cout << t;
}

void sweep_k() {
  bench::section("E5b: sweep k at p=512");
  util::Table t;
  t.header({"k", "cycles", "p/k + log2 k", "ratio", "messages", "msg/p"});
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    auto stats = run_ps(512, k);
    const double pred = 512.0 / double(k) + std::max(1.0, std::log2(double(k)));
    t.row({util::Table::num(k), util::Table::num(stats.cycles),
           util::Table::num(pred, 1),
           bench::ratio(double(stats.cycles), pred),
           util::Table::num(stats.messages),
           bench::ratio(double(stats.messages), 512.0)});
  }
  std::cout << t;
}

void BM_PartialSums(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto stats = run_ps(p, 8);
    benchmark::DoNotOptimize(stats.cycles);
  }
}
BENCHMARK(BM_PartialSums)->Arg(64)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  sweep_p();
  sweep_k();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
