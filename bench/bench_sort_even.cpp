// E2 — Corollaries 3/5: even-distribution sorting.
//
// Tables: (a) messages vs n at fixed (p, k) — the Theta(n) claim; (b)
// cycles vs n/k sweeping k at fixed n — the Theta(n/k) claim; both ratios
// must be ~flat. Plus simulator wall-clock throughput.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace mcb;

void sweep_n() {
  // The n-axis grid runs through the parallel sweep harness: 3 seeds per
  // point, every trial self-verified (descending permutation of its input),
  // cross-seed min/mean/max reported. The Theta claims must hold at every
  // seed, so flat mean ratios with tight min..max spans are the pass
  // criterion.
  bench::section(
      "E2a: sweep n at p=64, k=8, 3 seeds via sweep harness (expect flat "
      "ratios)");
  const std::size_t p = 64, k = 8;
  harness::Sweep sweep;
  sweep.ps = {p};
  sweep.ks = {k};
  sweep.ns = {4096, 8192, 16384, 32768, 65536, 131072};
  sweep.shapes = {util::Shape::kEven};
  sweep.algorithms = {"columnsort"};
  sweep.seeds = 3;
  auto run = harness::run_sweep(sweep);
  bench::check_sweep_ok(run);

  util::Table t;
  t.header({"n", "cyc mean", "cyc span", "cyc/(n/k)", "msg mean", "msg span",
            "msg/n"});
  for (const auto& agg : run.aggregates) {
    const auto n = agg.point.n;
    t.row({util::Table::num(n), util::Table::num(agg.cycles.mean, 1),
           util::Table::txt(std::to_string(std::size_t(agg.cycles.min)) +
                            ".." + std::to_string(std::size_t(agg.cycles.max))),
           bench::ratio(agg.cycles.mean, double(n) / double(k)),
           util::Table::num(agg.messages.mean, 1),
           util::Table::txt(std::to_string(std::size_t(agg.messages.min)) +
                            ".." +
                            std::to_string(std::size_t(agg.messages.max))),
           bench::ratio(agg.messages.mean, double(n))});
  }
  std::cout << t;
  std::cout << run.results.size() << " trials on " << run.threads_used
            << " threads in " << double(run.wall_ns) / 1e6 << " ms\n";
}

void sweep_k() {
  bench::section("E2b: sweep k at n=65536, p=64 (cycles ~ n/k)");
  util::Table t;
  t.header({"k", "columns", "cycles", "n/kk", "cyc/(n/kk)", "messages",
            "msg/n"});
  const std::size_t n = 65536, p = 64;
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    auto w = util::make_workload(n, p, util::Shape::kEven, 2);
    auto res = algo::columnsort_even({.p = p, .k = k}, w.inputs);
    bench::check_sorted(res.run.outputs, w.inputs);
    t.row({util::Table::num(k), util::Table::num(res.columns),
           util::Table::num(res.run.stats.cycles),
           util::Table::num(n / res.columns),
           bench::ratio(double(res.run.stats.cycles),
                        double(n) / double(res.columns)),
           util::Table::num(res.run.stats.messages),
           bench::ratio(double(res.run.stats.messages), double(n))});
  }
  std::cout << t;
}

void phase_breakdown() {
  bench::section("E2c: phase breakdown at n=65536, p=64, k=8");
  auto w = util::make_workload(65536, 64, util::Shape::kEven, 3);
  auto res = algo::columnsort_even({.p = 64, .k = 8}, w.inputs);
  util::Table t;
  t.header({"phase", "cycles", "messages"});
  for (const auto& ph : res.run.stats.phases) {
    t.row({util::Table::txt(ph.name), util::Table::num(ph.cycles),
           util::Table::num(ph.messages)});
  }
  std::cout << t;
}

void BM_ColumnsortEven(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto w = util::make_workload(n, 64, util::Shape::kEven, 1);
  for (auto _ : state) {
    auto res = algo::columnsort_even({.p = 64, .k = 8}, w.inputs);
    benchmark::DoNotOptimize(res.run.stats.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ColumnsortEven)->Arg(4096)->Arg(32768)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sweep_n();
  sweep_k();
  phase_breakdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
