// E6 — Section 7.2 / Corollary 6: uneven-distribution sorting.
//
// Sweeps the skew n_max/n from even to one-holder; cycles must track
// max(n/k, n_max) and messages Theta(n) throughout.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace mcb;

void skew_sweep() {
  bench::section("E6a: skew sweep at n=32768, p=32, k=8");
  util::Table t;
  t.header({"distribution", "n_max", "groups", "cycles", "max(n/k,n_max)",
            "ratio", "messages", "msg/n"});
  const std::size_t n = 32768, p = 32, k = 8;
  for (auto shape : {util::Shape::kEven, util::Shape::kRandom,
                     util::Shape::kStaircase, util::Shape::kZipf,
                     util::Shape::kOneHot}) {
    auto w = util::make_workload(n, p, shape, 7);
    auto res = algo::uneven_sort({.p = p, .k = k}, w.inputs);
    bench::check_sorted(res.run.outputs);
    const double pred = double(std::max(n / k, w.max_local()));
    t.row({util::Table::txt(util::to_string(shape)),
           util::Table::num(w.max_local()), util::Table::num(res.groups),
           util::Table::num(res.run.stats.cycles), util::Table::num(pred, 0),
           bench::ratio(double(res.run.stats.cycles), pred),
           util::Table::num(res.run.stats.messages),
           bench::ratio(double(res.run.stats.messages), double(n))});
  }
  std::cout << t;
}

void n_sweep() {
  bench::section("E6b: sweep n under zipf skew, p=32, k=8");
  util::Table t;
  t.header({"n", "n_max", "cycles", "max(n/k,n_max)", "ratio", "messages",
            "msg/n"});
  for (std::size_t n : {4096u, 8192u, 16384u, 32768u, 65536u}) {
    auto w = util::make_workload(n, 32, util::Shape::kZipf, 3);
    auto res = algo::uneven_sort({.p = 32, .k = 8}, w.inputs);
    bench::check_sorted(res.run.outputs);
    const double pred = double(std::max(n / 8, w.max_local()));
    t.row({util::Table::num(n), util::Table::num(w.max_local()),
           util::Table::num(res.run.stats.cycles), util::Table::num(pred, 0),
           bench::ratio(double(res.run.stats.cycles), pred),
           util::Table::num(res.run.stats.messages),
           bench::ratio(double(res.run.stats.messages), double(n))});
  }
  std::cout << t;
}

void BM_UnevenSort(benchmark::State& state) {
  auto w = util::make_workload(8192, 32, util::Shape::kZipf, 1);
  for (auto _ : state) {
    auto res = algo::uneven_sort({.p = 32, .k = 8}, w.inputs);
    benchmark::DoNotOptimize(res.run.stats.cycles);
  }
}
BENCHMARK(BM_UnevenSort)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  skew_sweep();
  n_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
