// E1 — Figure 1: the four matrix transformations.
//
// Prints the worked example (what Figure 1 of the paper illustrates),
// verifies the broadcast schedules hit the Koenig round bound across a
// dimension sweep, and times the schedule builders.
#include <benchmark/benchmark.h>

#include <numeric>

#include "bench_common.hpp"
#include "seq/columnsort.hpp"
#include "seq/matrix.hpp"
#include "sched/schedule.hpp"

namespace {

using namespace mcb;

void print_example() {
  bench::section("Figure 1: transformations on a 6x3 example");
  const std::size_t m = 6, k = 3;
  for (auto t : {sched::Transform::kTranspose,
                 sched::Transform::kUndiagonalize, sched::Transform::kUpShift,
                 sched::Transform::kDownShift}) {
    std::vector<Word> data(m * k);
    std::iota(data.begin(), data.end(), Word{1});
    seq::apply_transform(t, data, m, k);
    std::cout << sched::to_string(t) << ":\n";
    seq::ColMatrix mat(data, m, k);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < k; ++c) {
        std::cout.width(4);
        std::cout << mat.at(r, c);
      }
      std::cout << '\n';
    }
  }
}

void print_schedule_table() {
  bench::section("broadcast schedules: rounds vs the Koenig bound (<= m)");
  util::Table t;
  t.header({"transform", "m", "k", "rounds", "bound m", "messages",
            "cross moves"});
  for (auto tr : {sched::Transform::kTranspose,
                  sched::Transform::kUndiagonalize,
                  sched::Transform::kUpShift, sched::Transform::kDownShift}) {
    for (auto [m, k] : std::vector<std::pair<std::size_t, std::size_t>>{
             {64, 8}, {256, 16}, {1024, 32}}) {
      auto table = sched::permutation_table(tr, m, k);
      auto plan = sched::plan_transform(tr, m, k, &table);
      std::uint64_t cross = 0;
      for (std::size_t ell = 0; ell < m * k; ++ell) {
        if (table[ell] / m != ell / m) ++cross;
      }
      t.row({util::Table::txt(sched::to_string(tr)), util::Table::num(m),
             util::Table::num(k), util::Table::num(plan.cycles()),
             util::Table::num(m), util::Table::num(plan.messages()),
             util::Table::num(cross)});
    }
  }
  std::cout << t;
}

void BM_PermutationTable(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::permutation_table(sched::Transform::kUndiagonalize, m, 16));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m * 16));
}
BENCHMARK(BM_PermutationTable)->Arg(256)->Arg(4096);

void BM_PlanTransform(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::plan_transform(sched::Transform::kTranspose, m, 16));
  }
}
BENCHMARK(BM_PlanTransform)->Arg(256)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  print_example();
  print_schedule_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
